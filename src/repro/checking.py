"""Checked mode: opt-in structural invariant verification with replay.

Every result this reproduction produces rests on a handful of structural
invariants:

* **inclusion** — with an LLC-superset policy, "absent from the LLC" must
  imply "absent from every cache" (ReDHiP's no-false-negative guarantee);
* **PT monotonicity** — prediction-table bits are set on LLC fills and
  never cleared except by a recalibration sweep (§III-A);
* **recalibration exactness** — a sweep must leave the table bit-for-bit
  identical to a from-scratch rebuild from the LLC tags (§III-B);
* **accounting conservation** — the energy ledger and per-level counters
  must stay internally consistent (hits ≤ lookups, totals = sum of parts).

Checked mode threads lightweight verifiers for these through the hot
paths.  It is strictly opt-in — ``REPRO_CHECKED=1`` in the environment or
``SimConfig(checked=True)`` — and when disabled the simulators run the
exact same code they always did (the checked variants of the inner loops
and callbacks are only *constructed* when checking is on, so the disabled
cost is zero, not "one branch per access").

On a violation the verifier raises :class:`InvariantViolation` carrying a
minimal :class:`ReplayBundle` (config dict, workload name, seed, access
index) and writes it as JSON under ``.repro-replay/`` (override with
``REPRO_REPLAY_DIR``).  ``repro check --replay <bundle>`` — or
:func:`replay` from Python — re-runs exactly that window of the same
deterministic trajectory and reports whether the violation reproduces.

The same module provides the :func:`OutcomeStream fingerprints
<fingerprint>` used by ``repro check``, the golden regression tests and
the parallel-equivalence tests: a stable content hash of the outcome
sequence per (workload, machine, policy, refs, seed), which every later
optimization (vectorized walks, sharded runners) must leave unchanged.

This module deliberately imports nothing from :mod:`repro.sim` at module
scope (the simulators import *it*); the replay entry point resolves those
lazily.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import telemetry
from repro.hierarchy.inclusion import InclusionPolicy
from repro.util.validation import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hierarchy.events import OutcomeStream
    from repro.hierarchy.hierarchy import CacheHierarchy
    from repro.sim.config import SimConfig

__all__ = [
    "CHECKED_ENV",
    "REPLAY_DIR_ENV",
    "CheckContext",
    "CheckedPredictor",
    "HierarchyChecker",
    "InvariantViolation",
    "ReplayBundle",
    "ReplayReport",
    "check_ehc_counters",
    "check_levelpred_conservation",
    "check_result",
    "default_replay_dir",
    "enabled",
    "evaluation_context",
    "fingerprint",
    "replay",
]

#: Environment switch: any of 1/true/yes/on (case-insensitive) enables it.
CHECKED_ENV = "REPRO_CHECKED"

#: Where replay bundles are written (default ``.repro-replay/``).
REPLAY_DIR_ENV = "REPRO_REPLAY_DIR"

#: Accesses between full-hierarchy inclusion sweeps (the per-event checks
#: are local to the touched blocks; the sweep is the belt-and-braces pass).
DEFAULT_SWEEP_INTERVAL = 4096

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled(config: "SimConfig | None" = None) -> bool:
    """Is checked mode on for this run?  ``config.checked`` or the env."""
    if config is not None and getattr(config, "checked", False):
        return True
    return os.environ.get(CHECKED_ENV, "").strip().lower() in _TRUTHY


def default_replay_dir() -> Path:
    return Path(os.environ.get(REPLAY_DIR_ENV, ".repro-replay"))


def fingerprint(stream: "OutcomeStream") -> str:
    """Stable content hash of an outcome stream (delegates to the stream)."""
    return stream.fingerprint()


# --------------------------------------------------------------- bundles
@dataclass
class ReplayBundle:
    """Everything needed to re-run the window that violated an invariant.

    ``config`` is the :meth:`serialized SimConfig <config_to_dict>`;
    ``ref_index`` is the 0-based index (in the merged multi-core access
    order) of the access whose processing tripped the check, so a replay
    only has to walk ``ref_index + 1`` accesses.  ``runner`` names the
    simulation path that was active (``content`` or ``integrated``) and
    ``scheme`` the scheme, when one was in the loop.
    """

    invariant: str
    detail: str
    workload: str
    ref_index: int
    config: dict
    runner: str = "content"
    scheme: Optional[str] = None

    # ------------------------------------------------------------- (de)ser
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ReplayBundle":
        data = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path: "str | Path") -> "ReplayBundle":
        try:
            return cls.from_json(Path(path).read_text())
        except FileNotFoundError:
            raise ReproError(f"replay bundle not found: {path}") from None
        except (json.JSONDecodeError, TypeError) as exc:
            raise ReproError(f"malformed replay bundle {path}: {exc}") from exc

    def filename(self) -> str:
        policy = self.config.get("policy", "?")
        seed = self.config.get("seed", "?")
        return (
            f"{self.invariant}-{self.workload}-{policy}-s{seed}"
            f"-r{self.ref_index}.json"
        )

    def write(self, directory: "str | Path | None" = None) -> Path:
        """Write the bundle JSON; deterministic name, idempotent content."""
        directory = Path(directory) if directory is not None else default_replay_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename()
        path.write_text(self.to_json() + "\n")
        return path


def config_to_dict(config: "SimConfig") -> dict:
    """The replayable identity of a config (matches ``cache_key()``)."""
    return {
        "machine": config.machine.name,
        "policy": config.policy.value,
        "refs_per_core": config.refs_per_core,
        "seed": config.seed,
        "replacement": config.replacement,
        "coherent": config.coherent,
    }


def config_from_dict(data: dict) -> "SimConfig":
    """Rebuild a checked :class:`SimConfig` from a bundle's config dict."""
    from repro.energy.params import get_machine
    from repro.sim.config import SimConfig

    return SimConfig(
        machine=get_machine(data["machine"]),
        policy=data.get("policy", "inclusive"),
        refs_per_core=data["refs_per_core"],
        seed=data.get("seed", 1),
        replacement=data.get("replacement", "lru"),
        coherent=data.get("coherent", False),
        checked=True,
    )


class InvariantViolation(ReproError):
    """A structural invariant failed; carries the replay bundle."""

    def __init__(self, bundle: ReplayBundle, bundle_path: "Path | None" = None) -> None:
        self.bundle = bundle
        self.bundle_path = bundle_path
        self.invariant = bundle.invariant
        self.ref_index = bundle.ref_index
        where = f" (bundle: {bundle_path})" if bundle_path is not None else ""
        hint = (
            f"; rerun with `repro check --replay {bundle_path}`"
            if bundle_path is not None
            else ""
        )
        super().__init__(
            f"invariant {bundle.invariant!r} violated on workload "
            f"{bundle.workload!r} at access #{bundle.ref_index}: "
            f"{bundle.detail}{where}{hint}"
        )


# --------------------------------------------------------------- context
@dataclass
class CheckContext:
    """Shared state of one checked run: identity, cursor, failure path."""

    config: dict
    workload: str
    runner: str = "content"
    scheme: Optional[str] = None
    sweep_interval: int = DEFAULT_SWEEP_INTERVAL
    replay_dir: Optional[Path] = None
    #: Index of the access currently being processed (updated by the
    #: simulator's checked loop; -1 before the first access).
    current_ref: int = field(default=-1, compare=False)

    @classmethod
    def for_run(
        cls,
        config: "SimConfig",
        workload_name: str,
        runner: str = "content",
        scheme: Optional[str] = None,
    ) -> "CheckContext":
        return cls(
            config=config_to_dict(config),
            workload=workload_name,
            runner=runner,
            scheme=scheme,
        )

    def fail(self, invariant: str, detail: str, ref_index: "int | None" = None) -> None:
        """Write a replay bundle and raise :class:`InvariantViolation`."""
        telemetry.count("invariants.violations", invariant=invariant)
        telemetry.event(
            "invariant_violation", invariant=invariant,
            workload=self.workload, detail=detail,
        )
        bundle = ReplayBundle(
            invariant=invariant,
            detail=detail,
            workload=self.workload,
            ref_index=self.current_ref if ref_index is None else ref_index,
            config=self.config,
            runner=self.runner,
            scheme=self.scheme,
        )
        path = bundle.write(self.replay_dir)
        raise InvariantViolation(bundle, path)


# ------------------------------------------------------------- hierarchy
class HierarchyChecker:
    """Verifies the inclusion invariant as the hierarchy mutates.

    Local checks run per access but only on the blocks the access actually
    filled or evicted (a handful of ``contains`` probes each); a full
    :meth:`CacheHierarchy.check_inclusion` sweep runs every
    ``sweep_interval`` accesses and once more at the end of the walk.
    Checks are deferred to the end of each access because the hierarchy
    emits the LLC-evict notification *before* the back-invalidations that
    restore the invariant.
    """

    def __init__(self, ctx: CheckContext) -> None:
        self.ctx = ctx
        self.hier: "CacheHierarchy | None" = None
        self._touched: set[int] = set()
        self._countdown = ctx.sweep_interval
        # Rebound per call in the hot path; bind() replaces it.
        self._check_block = None

    def bind(self, hier: "CacheHierarchy") -> None:
        self.hier = hier
        self._check_block = hier.check_block_inclusion

    # Wired into the hierarchy's on_fill/on_evict callback chain.
    def on_fill(self, level: int, block: int) -> None:
        self._touched.add(block)

    def on_evict(self, level: int, block: int) -> None:
        self._touched.add(block)

    def after_access(self, ref_index: int) -> None:
        """Run the deferred local checks for one completed access."""
        touched = self._touched
        if touched:
            check_block = self._check_block
            for block in touched:
                problems = check_block(block)
                if problems:
                    self.ctx.fail("inclusion", "; ".join(problems), ref_index)
            touched.clear()
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.ctx.sweep_interval
            self._full_sweep(ref_index)

    def final(self, ref_index: int) -> None:
        """End-of-walk full verification."""
        self._full_sweep(ref_index)

    def _full_sweep(self, ref_index: int) -> None:
        telemetry.count("invariants.inclusion_sweeps")
        problems = self.hier.check_inclusion()
        if problems:
            head = "; ".join(problems[:4])
            more = f" (+{len(problems) - 4} more)" if len(problems) > 4 else ""
            self.ctx.fail("inclusion-sweep", head + more, ref_index)


# -------------------------------------------------------- prediction table
class CheckedPredictor:
    """Delegating wrapper enforcing the PT invariants on a ReDHiP-style
    predictor (anything with ``table``, ``mirror`` and ``engine``).

    * **monotonicity** — between sweeps, bits may only be set, never
      cleared: a shadow copy of the bitmap is advanced on every check and
      any bit present in the shadow but absent from the live table is a
      violation;
    * **recalibration exactness** — immediately after each sweep, the
      table must equal a from-scratch rebuild from the LLC residents
      (through the controller's own hash), and the tag mirror's counts
      must equal an exact recount of those residents.

    Everything not intercepted here delegates to the wrapped predictor, so
    the evaluators cannot tell the difference.
    """

    #: Table updates between monotonicity re-checks (each check is one
    #: vectorized pass over the bitmap).
    MONOTONE_INTERVAL = 256

    def __init__(
        self, inner, hier: "CacheHierarchy", ctx: CheckContext, pending=None
    ) -> None:
        self._inner = inner
        self._hier = hier
        self._ctx = ctx
        #: The integrated simulator's not-yet-applied LLC event list, as
        #: ``(op, block)`` with op 0 = fill / 1 = evict (its ``_FILL`` /
        #: ``_EVICT``).  The loop applies each access's events to the
        #: predictor *after* the lookup raced them, so at sweep time the
        #: mirror is exactly these events behind the live hierarchy; the
        #: sweep oracle un-applies them before comparing.
        self._pending = pending if pending is not None else []
        self._shadow = inner.table.snapshot()
        self._sweeps_seen = inner.engine.sweeps
        self._ops = 0

    # ------------------------------------------------------- delegation
    def __getattr__(self, name):
        return getattr(self._inner, name)

    def predict_present(self, block: int) -> bool:
        return self._inner.predict_present(block)

    def on_llc_fill(self, block: int) -> None:
        self._inner.on_llc_fill(block)
        self._tick()

    def on_llc_evict(self, block: int) -> None:
        self._inner.on_llc_evict(block)
        self._tick()

    def note_l1_miss(self) -> int:
        stall = self._inner.note_l1_miss()
        if self._inner.engine.sweeps != self._sweeps_seen:
            self._after_sweep()
        return stall

    # ----------------------------------------------------------- checks
    def _tick(self) -> None:
        self._ops += 1
        if self._ops % self.MONOTONE_INTERVAL == 0:
            self._check_monotone()

    def _check_monotone(self) -> None:
        bits = self._inner.table._bits
        cleared = self._shadow & ~bits
        if cleared.any():
            idx = int(np.flatnonzero(cleared)[0])
            self._ctx.fail(
                "pt-monotone",
                f"table bit {idx} was cleared outside a recalibration sweep "
                f"({int(cleared.sum())} bits total)",
            )
        # Bits only grow between sweeps, so the live bitmap is the new
        # tightest lower bound.
        np.copyto(self._shadow, bits)

    def _after_sweep(self) -> None:
        inner = self._inner
        residents = set(self._hier.llc_resident_blocks())
        for op, block in reversed(self._pending):
            if op == 0:  # un-apply a fill the mirror has not seen yet
                residents.discard(block)
            else:  # un-apply an eviction: the block was still resident
                residents.add(block)
        problems = inner.table.verify_against_blocks(residents, index_fn=inner._index)
        if problems:
            self._ctx.fail("recalibration", "; ".join(problems))
        problems = inner.mirror.verify_against_blocks(residents, index_fn=inner._index)
        if problems:
            self._ctx.fail("tag-mirror", "; ".join(problems))
        np.copyto(self._shadow, inner.table._bits)
        self._sweeps_seen = inner.engine.sweeps


def evaluation_context(machine_name: str, workload: str,
                       scheme: "str | None") -> CheckContext:
    """A minimal context for invariants raised by the two-phase
    evaluator, which has no :class:`SimConfig` in scope.  The bundle it
    writes records the identity but cannot be replayed access-by-access
    (evaluator invariants are whole-run conservation properties)."""
    return CheckContext(
        config={"machine": machine_name},
        workload=workload,
        runner="evaluate",
        scheme=scheme,
    )


def check_levelpred_conservation(
    *,
    ctx: CheckContext,
    l1_misses: int,
    skips: int,
    correct_singles: int,
    mispredicts: int,
    unconfident: int,
    walks: int,
    walk_reach_l2: int,
) -> None:
    """Recovery-walk conservation for the level-prediction scheme.

    Every L1 miss takes exactly one of four paths — presence skip,
    correct single probe, mispredict (single + recovery walk), or
    unconfident full walk — and every walk starts at L2.  Violations
    mean the evaluator's masks drifted from the access flow.
    """
    telemetry.count("invariants.result_checks")
    problems = []
    total = skips + correct_singles + mispredicts + unconfident
    if total != l1_misses:
        problems.append(
            f"paths do not partition the misses: {skips} skips + "
            f"{correct_singles} correct singles + {mispredicts} mispredicts "
            f"+ {unconfident} unconfident = {total} != {l1_misses} L1 misses"
        )
    if walks != mispredicts + unconfident:
        problems.append(
            f"{walks} walks != {mispredicts} mispredicts + "
            f"{unconfident} unconfident"
        )
    if walk_reach_l2 != walks:
        problems.append(
            f"{walk_reach_l2} walk probes at L2 != {walks} walks "
            "(every recovery/full walk starts at L2)"
        )
    if problems:
        ctx.fail("levelpred-conservation", "; ".join(problems))


def check_ehc_counters(predictor, ctx: CheckContext) -> None:
    """Bounds and consistency of the expected-hit-count state.

    Saturating counters must stay within ``[0, EHC_MAX]`` and the tag
    mirror (the LLC stand-in the sweep reads) must never go negative.
    ``predictor`` is the live :class:`~repro.predictors.ehc.EHCController`.
    """
    from repro.predictors.ehc import EHC_MAX

    telemetry.count("invariants.result_checks")
    problems = []
    for name in ("expected", "cur"):
        arr = getattr(predictor, name)
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi > EHC_MAX:
            problems.append(
                f"{name} counters out of [0, {EHC_MAX}]: min {lo}, max {hi}"
            )
    mirror = predictor.mirror.counts
    if len(mirror) and int(mirror.min()) < 0:
        problems.append(f"tag mirror went negative (min {int(mirror.min())})")
    if problems:
        ctx.fail("ehc-counters", "; ".join(problems))


# -------------------------------------------------------------- accounting
def check_result(result, ctx: CheckContext) -> None:
    """End-of-run conservation checks on a :class:`SchemeResult`."""
    telemetry.count("invariants.result_checks")
    problems = result.ledger.validate()
    for level, hits in result.level_hits.items():
        lookups = result.level_lookups.get(level, 0)
        if hits < 0 or lookups < 0:
            problems.append(f"L{level}: negative counter (hits={hits}, lookups={lookups})")
        if hits > lookups:
            problems.append(f"L{level}: {hits} hits exceed {lookups} lookups")
    if result.skips + result.false_positives > result.l1_misses:
        problems.append(
            f"skips ({result.skips}) + false positives "
            f"({result.false_positives}) exceed L1 misses ({result.l1_misses})"
        )
    if result.false_positives > result.true_misses:
        problems.append(
            f"false positives ({result.false_positives}) exceed true "
            f"misses ({result.true_misses})"
        )
    if not np.isfinite(result.static_nj) or result.static_nj < 0:
        problems.append(f"static energy is {result.static_nj!r}")
    if not np.isfinite(result.exec_cycles) or result.exec_cycles < 0:
        problems.append(f"execution cycles are {result.exec_cycles!r}")
    if problems:
        ctx.fail("energy-conservation", "; ".join(problems))


# ------------------------------------------------------------------ replay
@dataclass(frozen=True)
class ReplayReport:
    """Outcome of re-running a replay bundle."""

    reproduced: bool
    bundle: ReplayBundle
    violation: Optional[InvariantViolation] = None
    fingerprint: Optional[str] = None

    @property
    def message(self) -> str:
        if self.violation is None:
            fp = f"; window fingerprint {self.fingerprint}" if self.fingerprint else ""
            return (
                f"not reproduced: {self.bundle.invariant!r} no longer fires "
                f"within {self.bundle.ref_index + 1} accesses of "
                f"{self.bundle.workload!r}{fp}"
            )
        same = "reproduced" if self.reproduced else "violated differently"
        return (
            f"{same}: {self.violation.invariant!r} at access "
            f"#{self.violation.ref_index} (bundle expected "
            f"{self.bundle.invariant!r} at #{self.bundle.ref_index})"
        )


_REPLAYABLE_SCHEMES = (
    "ReDHiP", "ReDHiP-NoOv", "Base", "Oracle", "Phased", "CBF",
    "LevelPred", "EHC", "Oracle-LevelPred",
)


def _scheme_for_replay(name: str, cfg: "SimConfig"):
    from repro.core.redhip import redhip_scheme
    from repro.predictors import (
        base_scheme,
        cbf_scheme,
        ehc_scheme,
        levelpred_scheme,
        oracle_levelpred_scheme,
        oracle_scheme,
        phased_scheme,
    )

    if name in ("ReDHiP", "ReDHiP-NoOv"):
        return redhip_scheme(recal_period=cfg.recal_period, name=name)
    if name == "Base":
        return base_scheme()
    if name == "Oracle":
        return oracle_scheme()
    if name == "Phased":
        return phased_scheme()
    if name == "CBF":
        return cbf_scheme()
    if name == "LevelPred":
        return levelpred_scheme(recal_period=cfg.recal_period)
    if name == "EHC":
        return ehc_scheme(recal_period=cfg.recal_period)
    if name == "Oracle-LevelPred":
        return oracle_levelpred_scheme()
    raise ReproError(
        f"replay supports content bundles and the {_REPLAYABLE_SCHEMES} "
        f"schemes, not {name!r}"
    )


def replay(bundle: "ReplayBundle | str | Path") -> ReplayReport:
    """Re-run the deterministic window captured in a bundle.

    Rebuilds the config (forcing ``checked=True``) and the workload from
    the bundle, then re-runs the recorded simulation path.  Content
    bundles re-run only ``ref_index + 1`` accesses of the merged order;
    integrated bundles re-run the walk with the recorded scheme (windowing
    an integrated run would change predictor state, so it runs in full
    until the violation — still bounded by the recorded config).
    """
    from repro.sim.content import ContentSimulator
    from repro.workloads import get_workload

    if not isinstance(bundle, ReplayBundle):
        bundle = ReplayBundle.load(bundle)
    cfg = config_from_dict(bundle.config)
    workload = get_workload(bundle.workload, cfg.machine, cfg.refs_per_core, cfg.seed)
    try:
        if bundle.runner == "content":
            stream = ContentSimulator(cfg).run(
                workload, max_accesses=bundle.ref_index + 1
            )
            return ReplayReport(
                reproduced=False, bundle=bundle, fingerprint=stream.fingerprint()
            )
        from repro.sim.integrated import IntegratedSimulator

        scheme = _scheme_for_replay(bundle.scheme or "ReDHiP", cfg)
        IntegratedSimulator(cfg).run(workload, scheme)
        return ReplayReport(reproduced=False, bundle=bundle)
    except InvariantViolation as exc:
        reproduced = (
            exc.invariant == bundle.invariant and exc.ref_index == bundle.ref_index
        )
        return ReplayReport(reproduced=reproduced, bundle=bundle, violation=exc)
