"""Phase 1: the content simulation.

Walks a multi-core workload through the cache hierarchy once and records
the outcome stream (which level served each access) plus the LLC event
stream (fills/evictions).  Because prediction schemes never change what is
*filled* — only what is *probed* — this single walk is scheme-independent
for a given (workload, machine, inclusion policy); every scheme evaluator
then replays the streams (see :mod:`repro.sim.evaluate`).

Core interleaving follows §IV's timing model: each core advances by its
compute gaps (at its application CPI) plus a nominal per-access memory
cost, and accesses are merged in virtual-time order.  The nominal cost is
a constant — the *exact* per-access latency is scheme-dependent and would
create a circular dependency; the paper's own trace-driven methodology has
the same property ("the relative order of memory references is precise
enough to simulate realistic cache behaviors").
"""

from __future__ import annotations

import numpy as np

from repro import checking, telemetry
from repro.hierarchy.events import OutcomeRecorder, OutcomeStream
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.sim.config import SimConfig
from repro.util.validation import ConfigError
from repro.workloads.trace import Workload

__all__ = ["ContentSimulator", "merge_order"]

#: Nominal memory cycles per access used only for interleaving.
NOMINAL_ACCESS_CYCLES = 5.0


def merge_order(workload: Workload) -> tuple[np.ndarray, np.ndarray]:
    """Global access order across cores by virtual time.

    Returns ``(core_of_access, index_within_core)`` arrays of the merged
    order.  Deterministic: ties break by core id (stable mergesort).
    """
    vtimes = []
    cores = []
    idxs = []
    for core, trace in enumerate(workload.traces):
        cost = trace.gap.astype(np.float64) * trace.cpi + NOMINAL_ACCESS_CYCLES
        vt = np.cumsum(cost)
        vtimes.append(vt)
        cores.append(np.full(trace.num_refs, core, dtype=np.int64))
        idxs.append(np.arange(trace.num_refs, dtype=np.int64))
    all_vt = np.concatenate(vtimes)
    all_core = np.concatenate(cores)
    all_idx = np.concatenate(idxs)
    order = np.argsort(all_vt, kind="stable")
    return all_core[order], all_idx[order]


class ContentSimulator:
    """Runs the content walk and freezes the outcome stream."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config

    def run(self, workload: Workload, max_accesses: int | None = None) -> OutcomeStream:
        """Walk ``workload`` through the hierarchy; freeze the streams.

        ``max_accesses`` truncates the merged multi-core order — the
        replay path (:func:`repro.checking.replay`) uses it to re-run only
        the window up to a recorded violation.  A truncated walk is a
        prefix of the full one (the merge order is deterministic), but its
        fingerprint naturally differs from the full stream's.
        """
        with telemetry.span(
            "content_walk",
            workload=workload.name,
            machine=self.config.machine.name,
            policy=self.config.policy.value,
            checked=checking.enabled(self.config),
        ):
            stream = self._walk(workload, max_accesses)
        telemetry.count("content.walks")
        telemetry.count("content.accesses", stream.num_accesses)
        return stream

    def _walk(self, workload: Workload, max_accesses: int | None) -> OutcomeStream:
        cfg = self.config
        if workload.cores != cfg.machine.cores:
            raise ConfigError(
                f"workload has {workload.cores} traces but machine "
                f"{cfg.machine.name!r} has {cfg.machine.cores} cores"
            )
        recorder = OutcomeRecorder(num_levels=cfg.machine.num_levels)
        llc_level = cfg.machine.num_levels

        checker = None
        if checking.enabled(cfg):
            ctx = checking.CheckContext.for_run(cfg, workload.name, runner="content")
            checker = checking.HierarchyChecker(ctx)

            def on_fill(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_fill(block)
                checker.on_fill(level, block)

            def on_evict(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_evict(block)
                checker.on_evict(level, block)

        else:

            def on_fill(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_fill(block)

            def on_evict(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_evict(block)

        hierarchy_cls = CacheHierarchy
        if cfg.coherent:
            from repro.hierarchy.coherence import CoherentHierarchy

            hierarchy_cls = CoherentHierarchy
        hier = hierarchy_cls(
            cfg.machine,
            policy=cfg.policy,
            replacement=cfg.replacement,
            on_fill=on_fill,
            on_evict=on_evict,
            seed=cfg.seed,
        )

        if checker is not None:
            checker.bind(hier)

        merged_core, merged_idx = merge_order(workload)
        if max_accesses is not None:
            merged_core = merged_core[:max_accesses]
            merged_idx = merged_idx[:max_accesses]

        # Pre-extract per-core python lists: iterating numpy scalars is
        # several times slower than list iteration in the hot loop.
        blocks = [t.blocks.tolist() for t in workload.traces]
        writes = [t.write.tolist() for t in workload.traces]
        gaps = [t.gap.tolist() for t in workload.traces]

        access = hier.access
        record = recorder.record
        if checker is None:
            for core, idx in zip(merged_core.tolist(), merged_idx.tolist()):
                block = blocks[core][idx]
                write = writes[core][idx]
                hit_level = access(core, block, write)
                record(core, block, write, gaps[core][idx], hit_level,
                       hier.last_hit_rank)
        else:
            # Checked variant of the same loop (kept separate so the
            # unchecked path pays nothing, not even a branch per access).
            after_access = checker.after_access
            ref = -1
            for core, idx in zip(merged_core.tolist(), merged_idx.tolist()):
                ref += 1
                block = blocks[core][idx]
                write = writes[core][idx]
                hit_level = access(core, block, write)
                record(core, block, write, gaps[core][idx], hit_level,
                       hier.last_hit_rank)
                after_access(ref)
            checker.final(ref)

        stream = recorder.freeze(hier.llc_resident_blocks())
        self._last_hierarchy = hier  # kept for tests/inspection
        return stream
