"""Phase 1: the content simulation.

Walks a multi-core workload through the cache hierarchy once and records
the outcome stream (which level served each access) plus the LLC event
stream (fills/evictions).  Because prediction schemes never change what is
*filled* — only what is *probed* — this single walk is scheme-independent
for a given (workload, machine, inclusion policy); every scheme evaluator
then replays the streams (see :mod:`repro.sim.evaluate`).

Core interleaving follows §IV's timing model: each core advances by its
compute gaps (at its application CPI) plus a nominal per-access memory
cost, and accesses are merged in virtual-time order.  The nominal cost is
a constant — the *exact* per-access latency is scheme-dependent and would
create a circular dependency; the paper's own trace-driven methodology has
the same property ("the relative order of memory references is precise
enough to simulate realistic cache behaviors").

Two walk implementations produce the stream:

* the **vectorized** set-bucketed walk (:mod:`repro.sim.vector_content`),
  taken by default whenever the configuration is eligible (inclusive +
  LRU + non-coherent) — it consumes the workload's chunked block stream
  directly and is bit-identical to the sequential walk;
* the **sequential** per-reference walk over the real
  :class:`CacheHierarchy`, kept as the reference implementation, the
  fallback for non-default configurations, and the checked-mode oracle.
  It consumes the same block stream through the per-reference adapter
  (:func:`repro.workloads.shared.iter_refs`).

``REPRO_NO_VECTOR_WALK=1`` (or ``ContentSimulator(cfg,
vectorized=False)``) forces the sequential path; checked mode runs both
and asserts byte-identical streams before returning.
"""

from __future__ import annotations

from repro import checking, faults, telemetry
from repro.hierarchy.events import OutcomeRecorder, OutcomeStream
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.sim import vector_content
from repro.sim.config import SimConfig
from repro.util.validation import ConfigError
from repro.workloads.shared import (
    NOMINAL_ACCESS_CYCLES,
    iter_refs,
    merge_order,
)
from repro.workloads.trace import Workload

__all__ = ["ContentSimulator", "NOMINAL_ACCESS_CYCLES", "merge_order"]


class ContentSimulator:
    """Runs the content walk and freezes the outcome stream.

    ``vectorized`` selects the walk implementation: ``None`` (default)
    auto-selects — the set-bucketed walk when the configuration is
    eligible and ``REPRO_NO_VECTOR_WALK`` is unset, the sequential walk
    otherwise; ``True``/``False`` force one path (forcing ``True`` on an
    ineligible configuration raises at run time).
    """

    def __init__(self, config: SimConfig, vectorized: "bool | None" = None) -> None:
        self.config = config
        self.vectorized = vectorized

    def _use_vector(self) -> bool:
        if self.vectorized is not None:
            return self.vectorized
        return (
            vector_content.eligible(self.config)
            and not vector_content.vector_walk_disabled()
        )

    def run(self, workload: Workload, max_accesses: int | None = None) -> OutcomeStream:
        """Walk ``workload`` through the hierarchy; freeze the streams.

        ``max_accesses`` truncates the merged multi-core order — the
        replay path (:func:`repro.checking.replay`) uses it to re-run only
        the window up to a recorded violation.  A truncated walk is a
        prefix of the full one (the merge order is deterministic), but its
        fingerprint naturally differs from the full stream's.
        """
        checked = checking.enabled(self.config)
        use_vector = self._use_vector()
        with telemetry.span(
            "content_walk",
            workload=workload.name,
            machine=self.config.machine.name,
            policy=self.config.policy.value,
            checked=checked,
            path="vector" if use_vector else "sequential",
        ) as span:
            stream = None
            if use_vector:
                stream = self._walk_vector(workload, max_accesses, span)
            if stream is None or checked or not use_vector:
                sequential = self._walk(workload, max_accesses)
                if stream is None:
                    telemetry.count("content.sequential_walks")
                    stream = sequential
                else:
                    # Checked mode: the sequential walk doubles as the
                    # oracle — any divergence writes a replay bundle and
                    # raises before the stream escapes.
                    vector_content.assert_streams_equal(
                        stream, sequential, self.config, workload.name
                    )
                    telemetry.count("content.dual_walks")
        telemetry.count("content.walks")
        telemetry.count("content.accesses", stream.num_accesses)
        return stream

    def _walk_vector(
        self, workload: Workload, max_accesses: int | None, span
    ) -> "OutcomeStream | None":
        """One vectorized walk; ``None`` when an injected fault forces the
        sequential fallback (the ``content.vector_walk`` chaos site)."""
        try:
            fired = faults.check("content.vector_walk", key=workload.name)
            if fired is not None and fired.kind == "exception":
                raise faults.InjectedFault(
                    5, f"injected vector-walk failure for {workload.name!r}"
                )
            stream, stats = vector_content.walk_vectorized(
                self.config, workload, max_accesses=max_accesses
            )
        except faults.InjectedFault as exc:
            faults.handled(
                "content.vector_walk", "sequential_fallback",
                workload=workload.name, error=str(exc),
            )
            span.tag(path="sequential", fallback="injected_fault")
            return None
        span.tag(
            chunks=stats["chunks"],
            skipped=stats["skipped"],
            demoted=stats["demoted"],
        )
        telemetry.count("content.vector_walks")
        telemetry.count("content.vector_chunks", stats["chunks"])
        telemetry.count("content.vector_skipped", stats["skipped"])
        return stream

    def _walk(self, workload: Workload, max_accesses: int | None) -> OutcomeStream:
        cfg = self.config
        if workload.cores != cfg.machine.cores:
            raise ConfigError(
                f"workload has {workload.cores} traces but machine "
                f"{cfg.machine.name!r} has {cfg.machine.cores} cores"
            )
        recorder = OutcomeRecorder(num_levels=cfg.machine.num_levels)
        llc_level = cfg.machine.num_levels

        checker = None
        if checking.enabled(cfg):
            ctx = checking.CheckContext.for_run(cfg, workload.name, runner="content")
            checker = checking.HierarchyChecker(ctx)

            def on_fill(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_fill(block)
                checker.on_fill(level, block)

            def on_evict(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_evict(block)
                checker.on_evict(level, block)

        else:

            def on_fill(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_fill(block)

            def on_evict(level: int, block: int) -> None:
                if level == llc_level:
                    recorder.llc_evict(block)

        hierarchy_cls = CacheHierarchy
        if cfg.coherent:
            from repro.hierarchy.coherence import CoherentHierarchy

            hierarchy_cls = CoherentHierarchy
        hier = hierarchy_cls(
            cfg.machine,
            policy=cfg.policy,
            replacement=cfg.replacement,
            on_fill=on_fill,
            on_evict=on_evict,
            seed=cfg.seed,
        )

        if checker is not None:
            checker.bind(hier)

        # The merged multi-core order arrives as the same chunked block
        # stream the vectorized walk consumes, through the per-reference
        # adapter — one code path producing the interleaving.
        refs = iter_refs(workload.block_stream(max_refs=max_accesses))

        access = hier.access
        record = recorder.record
        if checker is None:
            for _ref, core, block, write, gap in refs:
                hit_level = access(core, block, write)
                record(core, block, write, gap, hit_level, hier.last_hit_rank)
        else:
            # Checked variant of the same loop (kept separate so the
            # unchecked path pays nothing, not even a branch per access).
            after_access = checker.after_access
            ref = -1
            for ref, core, block, write, gap in refs:
                hit_level = access(core, block, write)
                record(core, block, write, gap, hit_level, hier.last_hit_rank)
                after_access(ref)
            checker.final(ref)

        stream = recorder.freeze(hier.llc_resident_blocks())
        self._last_hierarchy = hier  # kept for tests/inspection
        return stream
