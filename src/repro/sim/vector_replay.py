"""Vectorized ReDHiP replay: batch the per-L1-miss lookup loop with NumPy.

:func:`repro.sim.evaluate.replay_predictor` replays the LLC event stream
against a predictor one L1 miss at a time — a Python call per miss plus a
Python call per LLC event.  For the plain :class:`ReDHiPController
<repro.core.redhip.ReDHiPController>` that loop is batchable, because the
controller's visible state changes in only two ways between recalibration
sweeps:

* **fills set bits** — and never clear them (the PT-monotonicity invariant
  checked mode already enforces); evictions touch only the tag mirror;
* **sweeps happen at deterministic miss counts** — the fixed-period engine
  fires after every ``period``-th L1 miss, independent of the answers.

So the replay decomposes into *epochs* (the spans between consecutive
sweeps).  Within one epoch the prediction for the miss at access index
``i`` hashing to table entry ``e`` is::

    bits_at_epoch_start[e]  OR  first_fill_time[e] < i

where ``first_fill_time[e]`` is the access index of the earliest LLC fill
in the epoch that hashes to ``e`` — computed for all entries at once with
``np.minimum.at`` (first-fill-sets-the-bit semantics).  The tag mirror
advances per epoch with ``np.add.at``/``np.subtract.at``, and the sweep
itself is the same ``counts > 0`` assignment the engine performs.

The function mutates the controller to the exact end-of-run state the
sequential loop would leave (table bits, mirror counts, telemetry
counters, sweep/stall totals), so ``predictor.stats()`` and every derived
:class:`SchemeResult` field are bit-identical.  Stateful predictors — CBF
(per-eviction decrements), MissMap, gated wrappers, the adaptive
(churn-triggered) engine — are not epoch-batchable and stay on the
sequential path; :func:`eligible` is the gate.

``REPRO_NO_VECTOR_REPLAY=1`` forces the sequential path everywhere, and
checked mode runs both paths and asserts equivalence (see
:func:`repro.sim.evaluate.evaluate_scheme`).
"""

from __future__ import annotations

import os

import numpy as np

from repro import telemetry
from repro.core.recalibration import RecalibrationEngine
from repro.core.redhip import ReDHiPController
from repro.hierarchy.events import EVENT_FILL, OutcomeStream
from repro.predictors.hashes import bits_hash_array, xor_hash_array
from repro.sim.charging import recal_stall_cycles
from repro.util.validation import ConfigError

__all__ = ["NO_VECTOR_ENV", "eligible", "replay_redhip_vectorized",
           "vector_replay_disabled"]

#: Escape hatch: force the sequential replay path everywhere.
NO_VECTOR_ENV = "REPRO_NO_VECTOR_REPLAY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Sentinel "no fill yet" event time (later than any access index).
_NEVER = np.iinfo(np.int64).max


def vector_replay_disabled() -> bool:
    """Has the environment vetoed the vectorized path?"""
    return os.environ.get(NO_VECTOR_ENV, "").strip().lower() in _TRUTHY


def eligible(predictor) -> bool:
    """Can ``predictor`` be replayed with the epoch-batched kernel?

    Exactly the plain ReDHiP controller with the fixed-period engine:
    subclasses and wrappers (gating, checked-mode delegation, the adaptive
    churn-triggered engine) may observe per-event state and must replay
    sequentially.  ``type(...) is`` — not ``isinstance`` — on purpose.
    """
    return (
        type(predictor) is ReDHiPController
        and type(predictor.engine) is RecalibrationEngine
        and predictor.hash_kind in ("bits", "xor")
    )


def _index_array(controller: ReDHiPController, blocks: np.ndarray) -> np.ndarray:
    """Vectorized counterpart of ``controller._index``."""
    if controller.hash_kind == "bits":
        idx = bits_hash_array(blocks, controller.table.p)
    else:
        idx = xor_hash_array(blocks, controller.table.p)
    return idx.astype(np.intp)


def replay_redhip_vectorized(
    stream: OutcomeStream, predictor: ReDHiPController
) -> tuple[np.ndarray, np.ndarray, float]:
    """Epoch-batched equivalent of :func:`repro.sim.evaluate.replay_predictor`.

    Same contract: returns ``(predicted, consulted, stall)`` over all
    accesses, and leaves ``predictor`` in the end-of-run state (final
    table bits, mirror counts, lookup/sweep telemetry) the sequential
    replay would produce.  Event ordering matches hardware: events caused
    by access *i* are applied after access *i*'s lookup.
    """
    if not eligible(predictor):
        raise ConfigError(
            f"predictor {predictor.name!r} is not epoch-batchable; "
            "use the sequential replay_predictor"
        )

    h = stream.hit_level
    n = len(h)
    predicted = np.ones(n, dtype=bool)
    consulted = np.zeros(n, dtype=bool)
    miss_mask = h != 1
    miss_at = np.nonzero(miss_mask)[0]           # access index per L1 miss
    n_miss = len(miss_at)
    miss_entry = _index_array(predictor, stream.block[miss_mask])

    when = stream.llc_when
    ev_fill = stream.llc_op == EVENT_FILL
    ev_entry = _index_array(predictor, stream.llc_block)
    n_events = len(when)

    engine = predictor.engine
    period = engine.period
    start_misses = engine.l1_misses
    bits = predictor.table._bits
    counts = predictor.mirror._counts

    out = np.empty(n_miss, dtype=bool)
    first_fill = None                            # lazily allocated
    sweeps = 0
    epochs = 0
    ev_lo = 0
    pos = 0
    while pos < n_miss:
        epochs += 1
        if period is None:
            pos_end, sweep_here = n_miss, False
        else:
            boundary = pos + period - (start_misses + pos) % period
            pos_end = min(n_miss, boundary)
            sweep_here = pos_end == boundary
        # Events the sequential loop applies during this epoch: everything
        # not yet applied with `when` before the epoch's last lookup.
        # Events at/after it land post-sweep, in the next epoch.
        ev_hi = int(np.searchsorted(when, miss_at[pos_end - 1], side="left"))
        seg_fill = ev_fill[ev_lo:ev_hi]
        fill_entry = ev_entry[ev_lo:ev_hi][seg_fill]
        fill_when = when[ev_lo:ev_hi][seg_fill]
        evict_entry = ev_entry[ev_lo:ev_hi][~seg_fill]

        entries = miss_entry[pos:pos_end]
        if len(fill_entry):
            if first_fill is None:
                first_fill = np.full(predictor.table.num_bits, _NEVER,
                                     dtype=np.int64)
            np.minimum.at(first_fill, fill_entry, fill_when)
            out[pos:pos_end] = bits[entries] | (first_fill[entries] < miss_at[pos:pos_end])
            first_fill[fill_entry] = _NEVER      # reset only touched slots
        else:
            out[pos:pos_end] = bits[entries]

        np.add.at(counts, fill_entry, 1)
        np.subtract.at(counts, evict_entry, 1)
        if len(evict_entry) and counts[evict_entry].min() < 0:
            raise ConfigError("LLC evicted a block the controller never saw filled")
        if sweep_here:
            np.greater(counts, 0, out=bits)
            sweeps += 1
        else:
            bits[fill_entry] = True
        ev_lo = ev_hi
        pos = pos_end

    # Drain the event tail so telemetry covers the full run (matches the
    # sequential loop's trailing drain).
    tail_fills = 0
    if ev_lo < n_events:
        seg_fill = ev_fill[ev_lo:]
        fill_entry = ev_entry[ev_lo:][seg_fill]
        evict_entry = ev_entry[ev_lo:][~seg_fill]
        np.add.at(counts, fill_entry, 1)
        np.subtract.at(counts, evict_entry, 1)
        if len(evict_entry) and counts[evict_entry].min() < 0:
            raise ConfigError("LLC evicted a block the controller never saw filled")
        bits[fill_entry] = True
        tail_fills = int(seg_fill.sum())

    # Advance the controller's telemetry to the sequential end state.
    total_fills = int(ev_fill[:ev_lo].sum()) + tail_fills
    predictor.lookups += n_miss
    predictor.predicted_miss += int(n_miss - out.sum())
    predictor.table_updates += total_fills
    engine.l1_misses = start_misses + n_miss
    engine.sweeps += sweeps
    stall = recal_stall_cycles(sweeps, engine.cost)
    telemetry.count("replay.epochs", epochs)
    telemetry.count("replay.sweeps", sweeps)

    predicted[miss_mask] = out
    consulted[miss_mask] = True                  # plain ReDHiP always consults
    return predicted, consulted, stall
