"""Report formatting: the rows/series the paper's figures plot.

Every experiment module returns an :class:`ExperimentResult` whose
``series`` are keyed exactly like the paper's figures (benchmark -> scheme
-> value), plus a pre-formatted text table for terminal/bench output and
the EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.evaluate import SchemeResult

__all__ = [
    "ExperimentResult",
    "format_table",
    "speedup_table",
    "dynamic_energy_table",
    "perf_energy_table",
    "hit_rate_table",
    "scheme_comparison_table",
    "add_average",
]

AVERAGE = "average"


@dataclass
class ExperimentResult:
    """A reproduced figure/table: keyed series plus a printable rendering."""

    experiment_id: str
    title: str
    series: dict
    table: str
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.experiment_id}: {self.title} ==\n{self.table}"


def add_average(series: dict[str, dict[str, float]]) -> dict[str, dict[str, float]]:
    """Append the paper's arithmetic ``average`` bar across benchmarks.

    Column order is preserved (first-seen order across rows) so callers can
    rely on the average row iterating in the same order as the sweep that
    produced it.
    """
    out = dict(series)
    schemes: list[str] = []
    for row in series.values():
        for scheme in row:
            if scheme not in schemes:
                schemes.append(scheme)
    avg = {}
    for scheme in schemes:
        vals = [row[scheme] for row in series.values() if scheme in row]
        avg[scheme] = sum(vals) / len(vals)
    out[AVERAGE] = avg
    return out


def format_table(
    series: dict[str, dict[str, float]],
    columns: list[str],
    value_format: str = "{:+.1%}",
    row_header: str = "benchmark",
) -> str:
    """Render {row: {column: value}} as an aligned text table."""
    widths = [max(len(row_header), max((len(r) for r in series), default=0))]
    widths += [max(len(c), 9) for c in columns]
    lines = []
    header = "  ".join(
        [row_header.ljust(widths[0])] + [c.rjust(w) for c, w in zip(columns, widths[1:])]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row_name, row in series.items():
        cells = [row_name.ljust(widths[0])]
        for col, w in zip(columns, widths[1:]):
            if col in row:
                cells.append(value_format.format(row[col]).rjust(w))
            else:
                cells.append("-".rjust(w))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _matrix(results: dict[str, dict[str, SchemeResult]]):
    """Benchmarks and scheme columns present in a result matrix."""
    benchmarks = list(results)
    schemes: list[str] = []
    for row in results.values():
        for s in row:
            if s not in schemes:
                schemes.append(s)
    return benchmarks, schemes


def speedup_table(
    results: dict[str, dict[str, SchemeResult]], base_name: str = "Base"
) -> dict[str, dict[str, float]]:
    """Figure 6's series: speedup minus one (positive = faster), per scheme."""
    series: dict[str, dict[str, float]] = {}
    for bench, row in results.items():
        base = row[base_name]
        series[bench] = {
            s: r.speedup_over(base) - 1.0 for s, r in row.items() if s != base_name
        }
    return series


def dynamic_energy_table(
    results: dict[str, dict[str, SchemeResult]], base_name: str = "Base"
) -> dict[str, dict[str, float]]:
    """Figure 7's series: dynamic energy normalized to the base case."""
    series: dict[str, dict[str, float]] = {}
    for bench, row in results.items():
        base = row[base_name]
        series[bench] = {
            s: r.dynamic_ratio(base) for s, r in row.items() if s != base_name
        }
    return series


def perf_energy_table(
    results: dict[str, dict[str, SchemeResult]], base_name: str = "Base"
) -> dict[str, dict[str, float]]:
    """Figure 8's series: speedup x total-energy-saving product."""
    series: dict[str, dict[str, float]] = {}
    for bench, row in results.items():
        base = row[base_name]
        series[bench] = {
            s: r.perf_energy_metric(base) for s, r in row.items() if s != base_name
        }
    return series


def hit_rate_table(
    results: dict[str, SchemeResult], num_levels: int
) -> dict[str, dict[str, float]]:
    """Figures 9/10's series: per-level hit rate per benchmark."""
    series: dict[str, dict[str, float]] = {}
    for bench, res in results.items():
        series[bench] = {f"L{lvl}": res.hit_rates[lvl] for lvl in range(1, num_levels + 1)}
    return series


def scheme_comparison_table(
    results: dict[str, SchemeResult], value_format: str = "{:.4g}"
) -> str:
    """Per-scheme dynamic energy broken down by charging-kernel category.

    Rows are the kernel's category names (:data:`repro.sim.charging.
    ENERGY_CATEGORIES`, in report order), columns the schemes.  Every
    (category, scheme) cell is populated — a scheme that never pays a
    category shows an explicit 0, never ``"-"`` — so WayPred's tag/data
    split and Oracle's zeroed lookup/update/recal columns line up
    directly against the schemes that do pay them.
    """
    from repro.sim.charging import ENERGY_CATEGORIES

    series: dict[str, dict[str, float]] = {
        cat: {name: res.ledger.category_nj(cat) for name, res in results.items()}
        for cat in ENERGY_CATEGORIES
    }
    columns = list(results)
    return format_table(series, columns, value_format=value_format,
                        row_header="category (nJ)")
