"""Run configuration and environment-driven defaults.

A :class:`SimConfig` pins everything that determines a content trajectory:
machine, inclusion policy, replacement policy, trace length and seed.
Scheme choice deliberately lives *outside* it — one content trajectory
serves every scheme (DESIGN.md, "Two-phase simulation").

Environment knobs honoured by the benchmark/experiment layer:

``REPRO_MACHINE``
    ``scaled`` (default) or ``paper``.
``REPRO_BENCH_REFS``
    References per core for benchmark runs (default 160 000 — long enough
    for steady-state LLC churn on the scaled machine; the vectorized cold
    path made doubling the old 80 000 default fit the same bench budget).
``REPRO_STREAM_CACHE``
    Persistent stream-cache directory (``1`` selects ``.repro-cache/``);
    see :mod:`repro.sim.streamcache`.
``REPRO_TELEMETRY``
    Enable telemetry collection (spans, metrics, run manifests); see
    :mod:`repro.telemetry`.
``REPRO_FAULTS``
    Path to a fault-injection plan (chaos testing); see
    :mod:`repro.faults`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.energy.params import MachineConfig, get_machine
from repro.hierarchy.inclusion import InclusionPolicy
from repro.util.validation import check_positive

__all__ = ["SimConfig", "default_recal_period", "bench_config"]


def default_recal_period(machine: MachineConfig) -> int:
    """Recalibration period (in L1 misses) matching the paper's cadence.

    The paper sweeps every 1 M L1 misses on a 64 MB LLC — exactly the
    LLC's line count (2**20 lines).  That identity is not a coincidence:
    staleness accumulates with LLC *turnover*, and with the paper's miss
    mix roughly 40 % of L1 misses cause an LLC fill, so "one LLC worth of
    L1 misses" corresponds to a fixed fraction of the table going stale
    between sweeps.  It also pins the overhead ratio: a sweep costs one
    tag read per set, and sets scale with lines, so sweep work stays a
    constant (sub-1 %) fraction of the probe work regardless of machine
    scale.  We therefore use ``llc.num_lines`` as the period on every
    machine; Figure 12 sweeps multiples of it.
    """
    return machine.llc.num_lines


@dataclass(frozen=True)
class SimConfig:
    """Everything that pins one content trajectory."""

    machine: MachineConfig
    policy: InclusionPolicy = InclusionPolicy.INCLUSIVE
    refs_per_core: int = 80_000
    seed: int = 1
    replacement: str = "lru"
    #: Fraction of a level's data-access energy charged per line fill.
    #: The paper's energy accounting is probe-dominated (see DESIGN.md);
    #: 0.0 reproduces its normalization, the fill-accounting ablation
    #: sweeps it.
    fill_energy_weight: float = 0.0
    #: Use the write-invalidate coherent hierarchy (multi-threaded
    #: workloads with shared data; inclusive policy only).
    coherent: bool = False
    #: Main-memory access latency in cycles.  The paper models memory as a
    #: zero-latency data store (§IV) — 0.0 reproduces that; the
    #: ``ext-memory`` experiment sweeps realistic values to quantify how
    #: the conclusions shift when off-chip time is charged.
    memory_latency: float = 0.0
    #: Main-memory access energy in nJ (same caveat; 0.0 = paper model).
    memory_energy_nj: float = 0.0
    #: Memory-level parallelism: miss-path latencies beyond L1 are divided
    #: by this factor, modelling an out-of-order core overlapping misses.
    #: 1.0 (the paper's serialized model) charges them in full.
    mlp: float = 1.0
    #: Banked open-page DRAM model (see :mod:`repro.energy.dram`).  When
    #: set, memory accesses are charged pattern-dependent latency/energy
    #: and the flat ``memory_latency``/``memory_energy_nj`` are ignored.
    dram: "object | None" = None
    #: Opt-in invariant checking (see :mod:`repro.checking`).  Orthogonal
    #: to the content trajectory — a checked walk must produce the same
    #: stream as an unchecked one — so it is excluded from comparisons and
    #: from :meth:`cache_key`.  ``REPRO_CHECKED=1`` enables it globally.
    checked: bool = field(default=False, compare=False)
    #: Opt-in persistent stream cache directory (see
    #: :mod:`repro.sim.streamcache`).  Where cached content walks live —
    #: not *what* they compute — so, like ``checked``, it is excluded from
    #: comparisons and from :meth:`cache_key`.  ``REPRO_STREAM_CACHE=dir``
    #: enables it globally.
    stream_cache: "str | None" = field(default=None, compare=False)
    #: Opt-in telemetry collection (see :mod:`repro.telemetry`): stage
    #: spans, metric counters and the run manifest.  Observation only — a
    #: traced run must produce the same trajectory as an untraced one — so
    #: like ``checked`` it is excluded from comparisons and from
    #: :meth:`cache_key`.  ``REPRO_TELEMETRY=1`` enables it globally.
    telemetry: bool = field(default=False, compare=False)
    #: Opt-in fault injection: path to a :mod:`repro.faults` plan JSON.
    #: Chaos is an environment property, not a trajectory property — the
    #: whole point is that faulted results must equal clean ones — so like
    #: ``checked`` it is excluded from comparisons and from
    #: :meth:`cache_key`.  ``REPRO_FAULTS=plan.json`` enables it globally.
    faults: "str | None" = field(default=None, compare=False)
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_positive("refs_per_core", self.refs_per_core)
        check_positive("mlp", self.mlp)
        object.__setattr__(self, "policy", InclusionPolicy.parse(self.policy))

    @property
    def total_refs(self) -> int:
        return self.refs_per_core * self.machine.cores

    @property
    def recal_period(self) -> int:
        """Paper-equivalent recalibration period for this machine."""
        return default_recal_period(self.machine)

    def with_policy(self, policy: InclusionPolicy | str) -> "SimConfig":
        return replace(self, policy=InclusionPolicy.parse(policy))

    def cache_key(self) -> tuple:
        """Hashable identity of the content trajectory this config pins."""
        return (
            self.machine.name,
            self.policy.value,
            self.refs_per_core,
            self.seed,
            self.replacement,
            self.coherent,
        )


def bench_config(machine_name: str | None = None, refs_per_core: int | None = None,
                 **kwargs) -> SimConfig:
    """Build the benchmark-layer config from the environment."""
    name = machine_name or os.environ.get("REPRO_MACHINE", "scaled")
    refs = refs_per_core or int(os.environ.get("REPRO_BENCH_REFS", "160000"))
    return SimConfig(machine=get_machine(name), refs_per_core=refs, **kwargs)
