"""Parallel content walks across worker processes.

Regenerating a figure costs one content walk per workload, and the walks
are embarrassingly parallel (they share nothing but read-only config).
This module fans them out over a :class:`~concurrent.futures.
ProcessPoolExecutor` and returns the frozen outcome streams, which the
caller can feed into an :class:`ExperimentRunner`'s cache — after which
every scheme evaluation proceeds as usual on the pre-warmed streams.

Workloads are *rebuilt inside each worker* from (name, config) rather than
pickled across the fence: the generators are deterministic, and shipping a
few ints beats serializing hundreds of megabytes of trace arrays.  Only
registry-named workloads can be prewarmed this way; explicit custom
workloads stay on the serial path.

Typical use (this is what the benchmark harness does under
``REPRO_PARALLEL``)::

    runner = ExperimentRunner(cfg)
    prewarm_streams(runner, PAPER_WORKLOADS, workers=4)
    results = runner.run_matrix(PAPER_WORKLOADS, schemes)   # all cached
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro import faults, telemetry
from repro.hierarchy.events import OutcomeStream
from repro.hierarchy.inclusion import InclusionPolicy
from repro.sim.config import SimConfig
from repro.sim.content import ContentSimulator
from repro.sim.runner import ExperimentRunner
from repro.sim.streamcache import resolve_cache, stream_key
from repro.util.validation import check_positive
from repro.workloads import get_workload

__all__ = ["walk_one", "walk_one_traced", "prewarm_streams",
           "default_workers", "default_worker_timeout"]

#: Environment override for the per-worker prewarm timeout (seconds).
WORKER_TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"

#: Generous default: a content walk is minutes at most; a worker silent
#: for this long is treated as lost and its shard re-runs serially.
DEFAULT_WORKER_TIMEOUT_S = 600.0


def default_workers() -> int:
    """Worker count: ``REPRO_PARALLEL`` if set, else cores-1 (min 1).

    A non-integer ``REPRO_PARALLEL`` (``"auto"``, ``"4x"``, …) is not an
    error — a misconfigured shell must not abort a long benchmark run —
    it warns and falls back to the cores-1 default.
    """
    env = os.environ.get("REPRO_PARALLEL")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            telemetry.event("parallel.bad_env", value=env)
            warnings.warn(
                f"ignoring non-integer REPRO_PARALLEL={env!r}; "
                f"falling back to cores-1",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, (os.cpu_count() or 2) - 1)


def default_worker_timeout() -> float:
    """Per-worker result timeout: active fault plan, env, else the default.

    A fault plan's ``worker_timeout_s`` wins (chaos tests shrink it so a
    ``hang`` fault converts to a timeout in seconds, not minutes), then
    ``REPRO_WORKER_TIMEOUT``, then :data:`DEFAULT_WORKER_TIMEOUT_S`.  A
    non-numeric env value warns and falls back, same contract as
    ``REPRO_PARALLEL``.
    """
    injector = faults.current()
    if injector is not None and injector.plan.worker_timeout_s is not None:
        return injector.plan.worker_timeout_s
    env = os.environ.get(WORKER_TIMEOUT_ENV)
    if env:
        try:
            return float(env)
        except ValueError:
            telemetry.event("parallel.bad_env", value=env)
            warnings.warn(
                f"ignoring non-numeric {WORKER_TIMEOUT_ENV}={env!r}; "
                f"falling back to {DEFAULT_WORKER_TIMEOUT_S:.0f}s",
                RuntimeWarning,
                stacklevel=2,
            )
    return DEFAULT_WORKER_TIMEOUT_S


def _worker_faults(workload_name: str) -> None:
    """The ``parallel.worker`` fault site, applied at worker entry.

    ``crash`` dies without cleanup (``os._exit`` — the pool reports a
    broken executor, exactly like an OOM-killed worker), ``hang`` stalls
    past the parent's timeout, ``exception`` raises.  All three must be
    absorbed by :func:`prewarm_streams`'s serial fallback.
    """
    fired = faults.check("parallel.worker", key=workload_name)
    if fired is None:
        return
    if fired.kind == "crash":
        os._exit(23)
    elif fired.kind == "hang":
        time.sleep(float(fired.spec.param("sleep_s", 60.0)))
    elif fired.kind == "exception":
        raise faults.InjectedWorkerError(
            f"injected worker exception for {workload_name!r}"
        )


def walk_one(config: SimConfig, workload_name: str,
             policy: str | None = None) -> tuple[str, str, OutcomeStream]:
    """Worker entry point: build the workload and run one content walk.

    Module-level (picklable) by design.  Returns the key material the
    parent needs to slot the stream into a runner cache.
    """
    _worker_faults(workload_name)
    cfg = config if policy is None else config.with_policy(policy)
    with telemetry.span("workload_build", workload=workload_name):
        workload = get_workload(
            workload_name, cfg.machine, cfg.refs_per_core, cfg.seed
        )
    telemetry.count("workload.builds")
    stream = ContentSimulator(cfg).run(workload)
    return workload_name, cfg.policy.value, stream


def walk_one_traced(config: SimConfig, workload_name: str,
                    policy: str | None = None) -> tuple[str, str, OutcomeStream, dict]:
    """Worker entry point with telemetry: :func:`walk_one` under a fresh
    session, returning the session snapshot as a fourth element so the
    parent can merge it (parallel ≡ serial aggregate counters)."""
    with telemetry.session(force=True, label=f"worker-{workload_name}") as sess:
        name, pol, stream = walk_one(config, workload_name, policy)
        snapshot = sess.snapshot()
    return name, pol, stream, snapshot


def _serial_rerun(runner: ExperimentRunner, name: str, policy, reason: str,
                  out: dict) -> None:
    """Degradation path: a shard lost to the pool re-executes serially.

    The re-run goes through :meth:`ExperimentRunner.stream`, so it still
    consults the disk cache and writes its result back — a recovered
    shard is indistinguishable from one that was never lost.
    """
    telemetry.count("parallel.worker_lost")
    faults.handled("parallel.worker", "serial_fallback",
                   workload=name, reason=reason)
    warnings.warn(
        f"prewarm worker for {name!r} {reason}; re-running the shard serially",
        RuntimeWarning,
        stacklevel=3,
    )
    out[name] = runner.stream(name, policy=policy)


def prewarm_streams(
    runner: ExperimentRunner,
    workload_names,
    policy: InclusionPolicy | str | None = None,
    workers: int | None = None,
    timeout_s: float | None = None,
) -> dict[str, OutcomeStream]:
    """Fill the runner's stream cache using a process pool.

    Returns {workload_name: stream}.  With ``workers=1`` (or a single
    pending workload) the pool is skipped entirely — same results, no fork
    cost.  Workloads whose streams are already in the runner's in-process
    cache — or loadable from the persistent disk cache, when one is
    enabled — are served from it and never re-walked, so a warm prewarm
    spawns no pool at all.

    The pool is allowed to misbehave: a worker that dies without returning
    a snapshot (crash, OOM kill, injected fault), hangs past ``timeout_s``
    (default :func:`default_worker_timeout`), or raises, loses only its
    own shard — the shard re-executes serially in the parent with a
    structured ``faults.handled`` warning, so the returned streams are
    always complete and bit-identical to a serial prewarm.  Even a pool
    that cannot spawn at all degrades to the serial path.
    """
    names = [n for n in workload_names]
    nworkers = workers if workers is not None else default_workers()
    check_positive("workers", nworkers)
    cfg = runner.config if policy is None else runner.config.with_policy(policy)
    disk = resolve_cache(cfg)

    out: dict[str, OutcomeStream] = {}
    pending: list[str] = []
    for name in names:
        key = (name, *cfg.cache_key())
        stream = runner._streams.get(key)
        if stream is None and disk is not None:
            stream = disk.load(stream_key(name, cfg))
            if stream is not None:
                runner._streams[key] = stream
        if stream is not None:
            out[name] = stream
        else:
            pending.append(name)
    if not pending:
        return out
    if nworkers == 1 or len(pending) <= 1:
        for name in pending:
            out[name] = runner.stream(name, policy=policy)
        return out

    pol = None if policy is None else InclusionPolicy.parse(policy).value
    # With telemetry collecting in this process, workers run their own
    # sessions and ship their snapshots back for merging, so the parallel
    # prewarm reports the same aggregate counters a serial one would.
    traced = telemetry.active() is not None
    worker_fn = walk_one_traced if traced else walk_one
    timeout = timeout_s if timeout_s is not None else default_worker_timeout()
    with telemetry.span("prewarm", workloads=len(pending), workers=nworkers):
        try:
            fired = faults.check("parallel.pool")
            if fired is not None and fired.kind == "spawn_fail":
                raise faults.InjectedFault(11, "injected pool spawn failure")
            pool = ProcessPoolExecutor(max_workers=min(nworkers, len(pending)))
        except OSError as exc:
            # No pool at all (fork limits, injected spawn failure): run
            # every pending shard serially — slower, never wrong.
            faults.handled("parallel.pool", "serial_all",
                           workloads=len(pending),
                           error=f"{exc.__class__.__name__}: {exc}")
            warnings.warn(
                f"prewarm pool failed to spawn ({exc}); walking "
                f"{len(pending)} workload(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            for name in pending:
                out[name] = runner.stream(name, policy=policy)
            return out
        telemetry.count("parallel.pools")
        lost: list[tuple[str, str]] = []
        abandoned = False  # a hung/dead worker: never block on shutdown
        try:
            futures = [
                (name, pool.submit(worker_fn, runner.config, name, pol))
                for name in pending
            ]
            for name, fut in futures:
                try:
                    result = fut.result(timeout=timeout)
                except FutureTimeoutError:
                    lost.append((name, f"timed out after {timeout:g}s"))
                    abandoned = True
                    continue
                except BrokenExecutor:
                    lost.append((name, "died without returning a snapshot "
                                       "(process pool broken)"))
                    abandoned = True
                    continue
                except Exception as exc:
                    lost.append((name, f"raised {exc.__class__.__name__}: {exc}"))
                    continue
                if traced:
                    name, _pol, stream, snapshot = result
                    telemetry.merge_snapshot(snapshot)
                else:
                    name, _pol, stream = result
                key = (name, *cfg.cache_key())
                runner._streams[key] = stream
                out[name] = stream
                if disk is not None:
                    disk.save(stream_key(name, cfg), stream)
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        for name, reason in lost:
            _serial_rerun(runner, name, policy, reason, out)
    return out
