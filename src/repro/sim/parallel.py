"""Parallel content walks across worker processes.

Regenerating a figure costs one content walk per workload, and the walks
are embarrassingly parallel (they share nothing but read-only config).
This module fans them out over a :class:`~concurrent.futures.
ProcessPoolExecutor` and returns the frozen outcome streams, which the
caller can feed into an :class:`ExperimentRunner`'s cache — after which
every scheme evaluation proceeds as usual on the pre-warmed streams.

Workloads are *rebuilt inside each worker* from (name, config) rather than
pickled across the fence: the generators are deterministic, and shipping a
few ints beats serializing hundreds of megabytes of trace arrays.  Only
registry-named workloads can be prewarmed this way; explicit custom
workloads stay on the serial path.

Typical use (this is what the benchmark harness does under
``REPRO_PARALLEL``)::

    runner = ExperimentRunner(cfg)
    prewarm_streams(runner, PAPER_WORKLOADS, workers=4)
    results = runner.run_matrix(PAPER_WORKLOADS, schemes)   # all cached
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor

from repro import telemetry
from repro.hierarchy.events import OutcomeStream
from repro.hierarchy.inclusion import InclusionPolicy
from repro.sim.config import SimConfig
from repro.sim.content import ContentSimulator
from repro.sim.runner import ExperimentRunner
from repro.sim.streamcache import resolve_cache, stream_key
from repro.util.validation import check_positive
from repro.workloads import get_workload

__all__ = ["walk_one", "walk_one_traced", "prewarm_streams", "default_workers"]


def default_workers() -> int:
    """Worker count: ``REPRO_PARALLEL`` if set, else cores-1 (min 1).

    A non-integer ``REPRO_PARALLEL`` (``"auto"``, ``"4x"``, …) is not an
    error — a misconfigured shell must not abort a long benchmark run —
    it warns and falls back to the cores-1 default.
    """
    env = os.environ.get("REPRO_PARALLEL")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            telemetry.event("parallel.bad_env", value=env)
            warnings.warn(
                f"ignoring non-integer REPRO_PARALLEL={env!r}; "
                f"falling back to cores-1",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, (os.cpu_count() or 2) - 1)


def walk_one(config: SimConfig, workload_name: str,
             policy: str | None = None) -> tuple[str, str, OutcomeStream]:
    """Worker entry point: build the workload and run one content walk.

    Module-level (picklable) by design.  Returns the key material the
    parent needs to slot the stream into a runner cache.
    """
    cfg = config if policy is None else config.with_policy(policy)
    with telemetry.span("workload_build", workload=workload_name):
        workload = get_workload(
            workload_name, cfg.machine, cfg.refs_per_core, cfg.seed
        )
    telemetry.count("workload.builds")
    stream = ContentSimulator(cfg).run(workload)
    return workload_name, cfg.policy.value, stream


def walk_one_traced(config: SimConfig, workload_name: str,
                    policy: str | None = None) -> tuple[str, str, OutcomeStream, dict]:
    """Worker entry point with telemetry: :func:`walk_one` under a fresh
    session, returning the session snapshot as a fourth element so the
    parent can merge it (parallel ≡ serial aggregate counters)."""
    with telemetry.session(force=True, label=f"worker-{workload_name}") as sess:
        name, pol, stream = walk_one(config, workload_name, policy)
        snapshot = sess.snapshot()
    return name, pol, stream, snapshot


def prewarm_streams(
    runner: ExperimentRunner,
    workload_names,
    policy: InclusionPolicy | str | None = None,
    workers: int | None = None,
) -> dict[str, OutcomeStream]:
    """Fill the runner's stream cache using a process pool.

    Returns {workload_name: stream}.  With ``workers=1`` (or a single
    pending workload) the pool is skipped entirely — same results, no fork
    cost.  Workloads whose streams are already in the runner's in-process
    cache — or loadable from the persistent disk cache, when one is
    enabled — are served from it and never re-walked, so a warm prewarm
    spawns no pool at all.
    """
    names = [n for n in workload_names]
    nworkers = workers if workers is not None else default_workers()
    check_positive("workers", nworkers)
    cfg = runner.config if policy is None else runner.config.with_policy(policy)
    disk = resolve_cache(cfg)

    out: dict[str, OutcomeStream] = {}
    pending: list[str] = []
    for name in names:
        key = (name, *cfg.cache_key())
        stream = runner._streams.get(key)
        if stream is None and disk is not None:
            stream = disk.load(stream_key(name, cfg))
            if stream is not None:
                runner._streams[key] = stream
        if stream is not None:
            out[name] = stream
        else:
            pending.append(name)
    if not pending:
        return out
    if nworkers == 1 or len(pending) <= 1:
        for name in pending:
            out[name] = runner.stream(name, policy=policy)
        return out

    pol = None if policy is None else InclusionPolicy.parse(policy).value
    # With telemetry collecting in this process, workers run their own
    # sessions and ship their snapshots back for merging, so the parallel
    # prewarm reports the same aggregate counters a serial one would.
    traced = telemetry.active() is not None
    worker_fn = walk_one_traced if traced else walk_one
    with telemetry.span("prewarm", workloads=len(pending), workers=nworkers):
        telemetry.count("parallel.pools")
        with ProcessPoolExecutor(max_workers=min(nworkers, len(pending))) as pool:
            futures = [
                pool.submit(worker_fn, runner.config, name, pol) for name in pending
            ]
            for fut in futures:
                if traced:
                    name, _pol, stream, snapshot = fut.result()
                    telemetry.merge_snapshot(snapshot)
                else:
                    name, _pol, stream = fut.result()
                key = (name, *cfg.cache_key())
                runner._streams[key] = stream
                out[name] = stream
                if disk is not None:
                    disk.save(stream_key(name, cfg), stream)
    return out
