"""Experiment orchestration with content-trajectory caching.

The expensive part of any figure is the content walk (one pass of the full
multi-core trace through the hierarchy).  Because the walk is
scheme-independent, the runner caches one :class:`OutcomeStream` per
(workload, machine, policy, refs, seed, replacement) and re-evaluates every
scheme against it in milliseconds — so regenerating Figure 6 costs one walk
per workload, not one per (workload, scheme).

Workloads themselves are also cached: the same trace arrays serve every
policy and every scheme, exactly as the paper's Pin trace files did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import checking, faults, telemetry
from repro.hierarchy.events import OutcomeStream
from repro.hierarchy.inclusion import InclusionPolicy
from repro.predictors.base import SchemeSpec
from repro.sim.config import SimConfig
from repro.sim.content import ContentSimulator
from repro.sim.evaluate import SchemeResult, evaluate_scheme
from repro.sim.integrated import IntegratedSimulator, PrefetchConfig
from repro.sim.streamcache import resolve_cache, stream_key
from repro.util.validation import ConfigError
from repro.workloads import get_workload
from repro.workloads.trace import Workload

__all__ = ["ExperimentRunner"]


@dataclass
class ExperimentRunner:
    """Caches workloads and content streams; runs scheme evaluations."""

    config: SimConfig
    _workloads: dict[tuple, Workload] = field(default_factory=dict, repr=False)
    _streams: dict[tuple, OutcomeStream] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # A config that asks for telemetry (SimConfig(telemetry=True) /
        # REPRO_TELEMETRY=1) gets a collection session even in pure-API
        # use; the CLI and bench harness manage their own scoped sessions.
        if telemetry.enabled(self.config) and telemetry.active() is None:
            telemetry.start(label=f"runner-{self.config.machine.name}")
        # Same pattern for fault injection: a config that names a plan
        # (SimConfig(faults="plan.json")) activates it unless a scoped
        # injector (repro chaos, the test suite) is already installed.
        faults.ensure(self.config)

    # ------------------------------------------------------------ workloads
    def add_workload(self, workload: Workload) -> str:
        """Register an explicit workload (custom traces, loaded trace
        files); it becomes addressable by its name like registry entries."""
        key = (workload.name, self.config.machine.name,
               self.config.refs_per_core, self.config.seed)
        self._workloads[key] = workload
        return workload.name

    def _resolve(self, workload: "str | Workload") -> str:
        if isinstance(workload, Workload):
            return self.add_workload(workload)
        return workload

    def workload(self, name: "str | Workload") -> Workload:
        name = self._resolve(name)
        key = (name, self.config.machine.name, self.config.refs_per_core, self.config.seed)
        if key not in self._workloads:
            with telemetry.span("workload_build", workload=name):
                self._workloads[key] = get_workload(
                    name, self.config.machine, self.config.refs_per_core, self.config.seed
                )
            telemetry.count("workload.builds")
        return self._workloads[key]

    # -------------------------------------------------------------- content
    def stream(self, workload_name: "str | Workload",
               policy: InclusionPolicy | str | None = None) -> OutcomeStream:
        """The (possibly cached) content stream for one workload.

        Lookup order: in-process cache, then the persistent disk cache
        (when enabled via ``SimConfig.stream_cache`` /
        ``REPRO_STREAM_CACHE`` — loads are fingerprint-verified), then a
        fresh content walk whose result is written back to both.
        """
        workload_name = self._resolve(workload_name)
        cfg = self.config if policy is None else self.config.with_policy(policy)
        key = (workload_name, *cfg.cache_key())
        if key not in self._streams:
            disk = resolve_cache(cfg)
            stream = None
            if disk is not None:
                with telemetry.span("cache_load", workload=workload_name):
                    stream = disk.load(stream_key(workload_name, cfg))
            if stream is None:
                stream = ContentSimulator(cfg).run(self.workload(workload_name))
                if disk is not None:
                    with telemetry.span("cache_save", workload=workload_name):
                        disk.save(stream_key(workload_name, cfg), stream)
            self._streams[key] = stream
        else:
            telemetry.count("runner.memo_hit")
        return self._streams[key]

    # ------------------------------------------------------------ two-phase
    def run(self, workload_name: "str | Workload", scheme: SchemeSpec,
            policy: InclusionPolicy | str | None = None) -> SchemeResult:
        """Two-phase evaluation (fast path).

        Predictor schemes require an LLC-superset policy; exclusive
        hierarchies must use :meth:`run_integrated` /
        :meth:`run_exclusive_redhip`.
        """
        workload_name = self._resolve(workload_name)
        cfg = self.config if policy is None else self.config.with_policy(policy)
        self._check_policy(scheme, cfg)
        stream = self.stream(workload_name, policy=cfg.policy)
        return self._evaluate(stream, self.workload(workload_name), scheme, cfg)

    @staticmethod
    def _check_policy(scheme: SchemeSpec, cfg: SimConfig) -> None:
        if scheme.consults_table and not cfg.policy.llc_is_superset:
            raise ConfigError(
                "two-phase evaluation of predictor schemes needs an "
                "LLC-superset (inclusive/hybrid) policy"
            )

    @staticmethod
    def _evaluate(stream: OutcomeStream, workload: Workload,
                  scheme: SchemeSpec, cfg: SimConfig) -> SchemeResult:
        return evaluate_scheme(
            stream,
            cfg.machine,
            scheme,
            workload,
            fill_energy_weight=cfg.fill_energy_weight,
            memory_latency=cfg.memory_latency,
            memory_energy_nj=cfg.memory_energy_nj,
            mlp=cfg.mlp,
            dram=cfg.dram,
            checked=checking.enabled(cfg),
        )

    def run_matrix(
        self, workload_names, schemes: list[SchemeSpec],
        policy: InclusionPolicy | str | None = None,
    ) -> dict[str, dict[str, SchemeResult]]:
        """Evaluate every scheme on every workload: {workload: {scheme: result}}.

        Each workload's content walk is resolved exactly once and the
        frozen outcome stream is shared across all schemes in the matrix —
        the stream and workload lookups don't repeat per (workload,
        scheme) pair.
        """
        cfg = self.config if policy is None else self.config.with_policy(policy)
        for scheme in schemes:
            self._check_policy(scheme, cfg)
        out: dict[str, dict[str, SchemeResult]] = {}
        for wname in workload_names:
            wname = self._resolve(wname)
            stream = self.stream(wname, policy=cfg.policy)
            workload = self.workload(wname)
            out[wname] = {
                scheme.name: self._evaluate(stream, workload, scheme, cfg)
                for scheme in schemes
            }
        return out

    # ------------------------------------------------------------ one-phase
    def run_integrated(
        self, workload_name: "str | Workload", scheme: SchemeSpec,
        policy: InclusionPolicy | str | None = None,
        prefetch: PrefetchConfig | None = None,
    ) -> SchemeResult:
        """Single-pass simulation (prefetching, cross-validation)."""
        workload_name = self._resolve(workload_name)
        cfg = self.config if policy is None else self.config.with_policy(policy)
        sim = IntegratedSimulator(cfg)
        return sim.run(self.workload(workload_name), scheme, prefetch=prefetch)

    def run_exclusive_redhip(
        self, workload_name: "str | Workload", recal_period: int | None = None
    ) -> SchemeResult:
        """ReDHiP with the per-level table stack on the exclusive hierarchy."""
        workload_name = self._resolve(workload_name)
        cfg = self.config.with_policy(InclusionPolicy.EXCLUSIVE)
        period = recal_period if recal_period is not None else cfg.recal_period
        sim = IntegratedSimulator(cfg)
        return sim.run_exclusive_redhip(self.workload(workload_name), period)
