"""Vectorized content walk: set-bucketed, chunk-batched inclusive replay.

:class:`repro.sim.content.ContentSimulator` walks the merged multi-core
trace one reference at a time — a Python method call plus six list appends
per access.  For the paper-default configuration (inclusive policy, LRU
replacement, no coherence) that walk decomposes exactly, because of how
set indexing works:

* **Set-partition independence.**  Every level indexes sets with the low
  bits of the block number (Figure 3), and every ``num_sets`` is a power
  of two, so the *smallest* level's set mask is a submask of every other
  level's.  Partition the accesses by ``block & (min_num_sets - 1)`` and
  two accesses in different partitions touch different sets at *every*
  level — including the shared LLC, whose back-invalidations therefore
  never cross partitions either.  Each partition is an independent
  sequential sub-walk; any processing order that preserves per-partition
  order yields identical per-set LRU states, identical outcomes and
  identical events.

* **Vectorized intra-set conflict resolution.**  Sort each chunk by
  partition (stable, so per-partition order survives) and consider an
  access whose *previous access by the same core in the same partition*
  touched the same block.  That predecessor left the block at rank 0 of
  the core's L1 set, the core itself issued nothing in the partition
  since, and no access *outside* the partition can reach that set — so
  the access is an L1 MRU hit with exactly one exception: an intervening
  same-partition access by another core may have evicted the block from
  the shared LLC, whose inclusion back-invalidation kills the L1 copy.
  The candidates (the bulk of any workload with locality — spatial runs,
  hot sets, duplicated-trace round-robin interleaving) are resolved with
  two vectorized sorts per chunk and never enter the Python loop; a
  per-``(partition, core)`` carry extends the test across chunk
  boundaries.

* **Eviction-hazard repair.**  The residual Python replay (an inlined
  per-set LRU identical in effect to
  :meth:`CacheHierarchy._access_inclusive`, minus dirty-bit bookkeeping,
  which provably never influences the outcome stream) tracks the hot
  block of every ``(partition, core)`` pair.  When an LLC eviction hits
  a block that is some pair's hot block, the pair's first still-pending
  candidate for that block is *demoted*: re-queued (in order) into the
  residual replay, where it replays as the memory miss it really is —
  refilling the block and re-validating the candidates behind it.  If
  the pair has no later access in the chunk, the cross-chunk carry is
  invalidated instead.  Demotion is rare (a few per thousand accesses)
  but load-bearing: it is what makes the optimistic skip *exact* rather
  than approximate.

LLC events are tagged with the originating global access index and merged
back into chronological order with one stable sort, so the resulting
:class:`OutcomeStream` is *byte-identical* to the sequential walk's —
``tests/test_vector_content.py`` fuzzes this over random geometries,
families and chunk sizes, and checked mode asserts it on every run.

``REPRO_NO_VECTOR_WALK=1`` forces the sequential path everywhere
(mirroring ``REPRO_NO_VECTOR_REPLAY``); :func:`eligible` gates the other
policies/replacements onto the sequential path automatically.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush

import numpy as np

from repro import checking
from repro.hierarchy.events import EVENT_EVICT, EVENT_FILL, OutcomeStream
from repro.hierarchy.inclusion import InclusionPolicy
from repro.sim.config import SimConfig
from repro.util.validation import ConfigError
from repro.workloads.trace import Workload

__all__ = [
    "NO_VECTOR_WALK_ENV",
    "assert_streams_equal",
    "eligible",
    "vector_walk_disabled",
    "walk_vectorized",
]

#: Escape hatch: force the sequential content walk everywhere.
NO_VECTOR_WALK_ENV = "REPRO_NO_VECTOR_WALK"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Stream fields compared by the dual-path equivalence assertion, in the
#: order divergences are reported (per-access fields first).
_STREAM_FIELDS = (
    "core", "block", "write", "gap", "hit_level", "hit_rank",
    "llc_when", "llc_op", "llc_block", "final_llc_blocks",
)


def vector_walk_disabled() -> bool:
    """Has the environment vetoed the vectorized walk?"""
    return os.environ.get(NO_VECTOR_WALK_ENV, "").strip().lower() in _TRUTHY


def eligible(config: SimConfig) -> bool:
    """Can this configuration take the set-bucketed walk?

    Exactly the paper-default content model: inclusive policy, true-LRU
    replacement, no coherence protocol (write-invalidate snooping reaches
    across cores *within* a set partition in ways the batched carry does
    not model).  Power-of-two set counts are guaranteed by the machine
    validators but re-checked here because partition independence is
    soundness, not performance.
    """
    if config.policy is not InclusionPolicy.INCLUSIVE:
        return False
    if config.replacement != "lru":
        return False
    if config.coherent:
        return False
    return all(
        lvl.num_sets > 0 and lvl.num_sets & (lvl.num_sets - 1) == 0
        for lvl in config.machine.levels
    )


def walk_vectorized(
    config: SimConfig,
    workload: Workload,
    max_accesses: "int | None" = None,
    chunk_refs: "int | None" = None,
) -> "tuple[OutcomeStream, dict]":
    """The batched equivalent of ``ContentSimulator._walk``.

    Returns ``(stream, stats)`` where ``stats`` carries the chunk, skip
    and demotion counts the telemetry span tags report.  The stream is
    byte-identical to the sequential walk's for every eligible
    configuration.
    """
    if not eligible(config):
        raise ConfigError(
            f"config (policy={config.policy.value}, "
            f"replacement={config.replacement!r}, coherent={config.coherent}) "
            "is not set-bucketable; use the sequential walk"
        )
    machine = config.machine
    if workload.cores != machine.cores:
        raise ConfigError(
            f"workload has {workload.cores} traces but machine "
            f"{machine.name!r} has {machine.cores} cores"
        )

    num_levels = machine.num_levels
    ncores = machine.cores
    # Private levels 1..L-1 (index 0..L-2 below); the LLC is shared.
    masks = [machine.level(lv).num_sets - 1 for lv in range(1, num_levels)]
    assocs = [machine.level(lv).assoc for lv in range(1, num_levels)]
    llc_mask = machine.llc.num_sets - 1
    llc_assoc = machine.llc.assoc
    pmask = min(lvl.num_sets for lvl in machine.levels) - 1
    nparts = pmask + 1
    ngroups = nparts * ncores          # (partition, core) pairs, flat

    kwargs = {} if chunk_refs is None else {"chunk_refs": chunk_refs}
    stream_it = workload.block_stream(max_refs=max_accesses, **kwargs)
    n = stream_it.num_refs

    hit_level = np.empty(n, dtype=np.int8)
    hit_rank = np.empty(n, dtype=np.int8)

    # Per-set LRU state: MRU-first lists in dicts keyed by set index
    # (sparse — only touched sets materialize).
    priv: list[list[dict]] = [
        [dict() for _ in range(ncores)] for _ in range(num_levels - 1)
    ]
    llc_sets: dict = {}
    l1_of_core = priv[0]
    l1_mask = masks[0]
    # Probe chain below L1 for each core: (sets, mask, level) for L2..LLC
    # (the hit level is precomputed so the loop carries no counter).
    deeper = [
        [(priv[lv][c], masks[lv], lv + 1) for lv in range(1, num_levels - 1)]
        + [(llc_sets, llc_mask, num_levels)]
        for c in range(ncores)
    ]
    # Back-invalidation chains, hoisted: per core the private levels
    # top-down (LLC-eviction inclusion sweep), and per (core, fill level)
    # the levels above it (private-victim sweep) — same notification
    # order as the sequential hierarchy.
    back_all = [
        [(priv[lv][c], masks[lv]) for lv in range(num_levels - 2, -1, -1)]
        for c in range(ncores)
    ]
    back_above = [
        [
            [(priv[lv2][c], masks[lv2]) for lv2 in range(lv - 1, -1, -1)]
            for lv in range(num_levels - 1)
        ]
        for c in range(ncores)
    ]
    fill_of_core = [
        [(priv[lv][c], masks[lv], assocs[lv], back_above[c][lv])
         for lv in range(num_levels - 2, -1, -1)]
        for c in range(ncores)
    ]
    # Fill-chain suffixes per (core, start), precomputed so the hot loop
    # never slices (a list allocation per access otherwise).
    fill_from = [
        [tuple(fill_of_core[c][s:]) for s in range(num_levels)]
        for c in range(ncores)
    ]

    # Owner bitmask per LLC-resident block: a conservative superset of
    # the cores whose private caches may hold it.  Set on LLC fill (sole
    # owner) and LLC hit (new sharer); L1/L2/L3 hits imply the bit is
    # already set, and the whole entry dies with the LLC eviction —
    # inclusion guarantees no private copy survives that.  Lets the
    # eviction back-invalidation sweep probe only plausible cores.
    owners: dict = {}
    allbits = (1 << ncores) - 1

    # Cross-chunk carry per (partition, core): block of the pair's last
    # access, provided no LLC eviction has killed its L1 copy since.
    carry_block = np.zeros(ngroups, dtype=np.uint64)
    carry_valid = np.zeros(ngroups, dtype=bool)
    # Hot block per pair, maintained by the residual replay (candidates
    # by construction never change it).  -1 = no access yet.
    hot: list[int] = [-1] * ngroups

    # LLC event accumulators (when = global index of the causing access).
    ev_when: list[int] = []
    ev_op: list[int] = []
    ev_block: list[int] = []
    ew_app, eo_app, eb_app = ev_when.append, ev_op.append, ev_block.append

    chunks = 0
    skipped = 0
    demoted_total = 0
    core_parts: list[np.ndarray] = []
    block_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    gap_parts: list[np.ndarray] = []

    np_pmask = np.uint64(pmask)
    for chunk in stream_it:
        chunks += 1
        core_parts.append(chunk.core)
        block_parts.append(chunk.block)
        write_parts.append(chunk.write)
        gap_parts.append(chunk.gap)
        m = chunk.num_refs

        # ---- sort by partition (replay order: per-partition chronology)
        part = (chunk.block & np_pmask).astype(np.int64)
        order = np.argsort(part, kind="stable")
        sp = part[order]
        sc = chunk.core[order]
        sb = chunk.block[order]
        sidx = order + chunk.start     # global access index per position

        # ---- candidate detection in (partition, core) grouping
        key_s = sp * ncores + sc
        order2 = np.argsort(key_s, kind="stable")
        k2 = key_s[order2]
        b2 = sb[order2]
        same_group = np.empty(m, dtype=bool)
        same_group[0] = False
        np.equal(k2[1:], k2[:-1], out=same_group[1:])
        cand2 = np.zeros(m, dtype=bool)
        cand2[1:] = same_group[1:] & (b2[1:] == b2[:-1])
        # Position (partition order) of each element's predecessor within
        # its group; -1 when the predecessor lies in an earlier chunk.
        pred2 = np.full(m, -1, dtype=np.int64)
        if m > 1:
            pred2[1:] = np.where(same_group[1:], order2[:-1], -1)
        first2 = ~same_group
        fk = k2[first2]
        cand2[first2] = carry_valid[fk] & (carry_block[fk] == b2[first2])

        # ---- advance cross-chunk carry to this chunk's group tails
        last2 = np.empty(m, dtype=bool)
        last2[-1] = True
        np.not_equal(k2[1:], k2[:-1], out=last2[:-1])
        lk = k2[last2]
        carry_block[lk] = b2[last2]
        carry_valid[lk] = True
        last_pos = np.full(ngroups, -1, dtype=np.int64)
        last_pos[lk] = order2[last2]

        # ---- pre-write candidate outcomes (L1 MRU hits), vectorized
        cand = np.zeros(m, dtype=bool)
        cand[order2] = cand2
        sk = sidx[cand]
        hit_level[sk] = 1
        hit_rank[sk] = 0
        skipped += len(sk)

        # ---- per-group candidate tables for eviction-hazard demotion
        ci2 = np.nonzero(cand2)[0]
        cand_groups: dict = {}
        if len(ci2):
            ck = k2[ci2]
            cpos = order2[ci2].tolist()
            cblk = b2[ci2].tolist()
            cprd = pred2[ci2].tolist()
            uk, starts = np.unique(ck, return_index=True)
            bounds = np.append(starts, len(ck)).tolist()
            uk = uk.tolist()
            for gi, g in enumerate(uk):
                s0, s1 = bounds[gi], bounds[gi + 1]
                cand_groups[g] = [cpos[s0:s1], cblk[s0:s1], cprd[s0:s1], 0]

        # ---- residual replay, merged in order with demoted candidates
        res = np.nonzero(~cand)[0]
        r_pos = res.tolist()
        r_core = sc[res].tolist()
        r_block = sb[res].tolist()
        r_idx = sidx[res].tolist()
        # key_s IS the flat (partition, core) index — reuse it as the hot
        # slot; precompute the L1 set key and owner bit while vectorized.
        r_hot = key_s[res].tolist()
        r_l1k = (sb[res] & np.uint64(l1_mask)).tolist()
        r_gidx = res.__len__() and sidx[res]
        hl: list[int] = []
        hr: list[int] = []
        hl_app, hr_app = hl.append, hr.append
        pending: list[int] = []        # heap of demoted positions
        num_res = len(r_pos)
        i = 0

        while i < num_res or pending:
            if pending and (i >= num_res or pending[0] < r_pos[i]):
                q = heappop(pending)
                c = int(sc[q])
                b = int(sb[q])
                i0 = int(sidx[q])
                hot[int(key_s[q])] = b
                l1key = b & l1_mask
                demote_slot = q
            else:
                q = r_pos[i]
                c = r_core[i]
                b = r_block[i]
                i0 = r_idx[i]
                hot[r_hot[i]] = b
                l1key = r_l1k[i]
                i += 1
                demote_slot = -1

            lst = l1_of_core[c].get(l1key)
            hitlev = -1
            if lst and b in lst:
                hitlev = 1
                if lst[0] == b:
                    rank = 0
                else:
                    rank = lst.index(b)
                    del lst[rank]
                    lst.insert(0, b)
            if hitlev < 0:
                hitlev = 0
                rank = -1
                for sets, mask, lvl in deeper[c]:
                    lst2 = sets.get(b & mask)
                    if lst2 and b in lst2:
                        hitlev = lvl
                        if lst2[0] == b:
                            rank = 0
                        else:
                            rank = lst2.index(b)
                            del lst2[rank]
                            lst2.insert(0, b)
                        break
                if hitlev == 0:
                    # Memory miss: LLC fill first, evicting (and back-
                    # invalidating) a victim when the set overflows —
                    # same notification order as CacheHierarchy._fill_llc.
                    key = b & llc_mask
                    lst2 = llc_sets.get(key)
                    if lst2 is None:
                        lst2 = llc_sets[key] = []
                    lst2.insert(0, b)
                    owners[b] = 1 << c   # fresh fill: sole plausible owner
                    ew_app(i0)
                    eo_app(EVENT_FILL)
                    eb_app(b)
                    if len(lst2) > llc_assoc:
                        vb = lst2.pop()
                        ew_app(i0)
                        eo_app(EVENT_EVICT)
                        eb_app(vb)
                        om = owners.pop(vb, allbits)
                        while om:
                            low = om & -om
                            om -= low
                            for l3, mask in back_all[low.bit_length() - 1]:
                                l4 = l3.get(vb & mask)
                                if l4 and vb in l4:
                                    l4.remove(vb)
                                else:
                                    # Private levels are strictly
                                    # inclusive per core (fills always
                                    # reach down to the hit level, upper
                                    # victims are swept): absent from
                                    # this level => absent above it.
                                    break
                        # Eviction hazard: any pair whose hot block just
                        # lost its L1 copy must not skip its next access
                        # to it — demote that candidate (or kill the
                        # cross-chunk carry if the pair is done here).
                        base = (vb & pmask) * ncores
                        for c2 in range(ncores):
                            fl = base + c2
                            if hot[fl] != vb:
                                continue
                            g = cand_groups.get(fl)
                            did_demote = False
                            if g is not None:
                                gpos, gblk, gprd, ptr = g
                                glen = len(gpos)
                                while ptr < glen and gpos[ptr] <= q:
                                    ptr += 1
                                if (ptr < glen and gblk[ptr] == vb
                                        and gprd[ptr] < q):
                                    heappush(pending, gpos[ptr])
                                    demoted_total += 1
                                    ptr += 1
                                    did_demote = True
                                g[3] = ptr
                            if not did_demote and last_pos[fl] < q:
                                carry_valid[fl] = False
                    start = 0
                else:
                    if hitlev == num_levels:
                        # LLC hit: this core becomes a plausible owner
                        # (it is about to fill its private levels).
                        owners[b] = owners.get(b, 0) | (1 << c)
                    start = num_levels - hitlev
                # Fill private levels top..1, back-invalidating each
                # level's victim from the levels above it (this core).
                for dd, mask, assoc, above in fill_from[c][start]:
                    key = b & mask
                    lst2 = dd.get(key)
                    if lst2 is None:
                        lst2 = dd[key] = []
                    lst2.insert(0, b)
                    if len(lst2) > assoc:
                        vb = lst2.pop()
                        for l3, mask2 in above:
                            l4 = l3.get(vb & mask2)
                            if l4 and vb in l4:
                                l4.remove(vb)
                            else:
                                break  # inclusive: absent => absent above
            if demote_slot < 0:
                hl_app(hitlev)
                hr_app(rank)
            else:
                gi0 = sidx[demote_slot]
                hit_level[gi0] = hitlev
                hit_rank[gi0] = rank
                skipped -= 1

        if num_res:
            hit_level[r_gidx] = np.asarray(hl, dtype=np.int8)
            hit_rank[r_gidx] = np.asarray(hr, dtype=np.int8)

    # Merge per-partition LLC events back into chronological order.  The
    # `when` keys are global access indices; one access emits at most one
    # fill+evict pair, appended adjacently, so a stable sort restores
    # exactly the sequential recorder's order.
    when_arr = np.asarray(ev_when, dtype=np.int64)
    ev_order = np.argsort(when_arr, kind="stable")
    final_llc: list[int] = []
    for lst in llc_sets.values():
        final_llc.extend(lst)

    if core_parts:
        core_all = np.concatenate(core_parts)
        block_all = np.concatenate(block_parts)
        write_all = np.concatenate(write_parts)
        gap_all = np.concatenate(gap_parts)
    else:
        core_all = np.empty(0, dtype=np.int64)
        block_all = np.empty(0, dtype=np.uint64)
        write_all = np.empty(0, dtype=bool)
        gap_all = np.empty(0, dtype=np.uint32)

    stream = OutcomeStream(
        core=core_all.astype(np.uint16),
        block=block_all,
        write=write_all,
        gap=gap_all.astype(np.uint32),
        hit_level=hit_level,
        hit_rank=hit_rank,
        llc_when=when_arr[ev_order],
        llc_op=np.asarray(ev_op, dtype=np.int8)[ev_order],
        llc_block=np.asarray(ev_block, dtype=np.uint64)[ev_order],
        num_levels=num_levels,
        final_llc_blocks=np.asarray(sorted(final_llc), dtype=np.uint64),
    )
    stats = {
        "chunks": chunks,
        "skipped": skipped,
        "residual": n - skipped,
        "demoted": demoted_total,
        "partitions": nparts,
    }
    return stream, stats


def _first_divergence(a: np.ndarray, b: np.ndarray) -> int:
    """Index of the first differing element (arrays of equal length)."""
    diff = np.nonzero(a != b)[0]
    return int(diff[0]) if len(diff) else -1


def assert_streams_equal(
    vector: OutcomeStream,
    sequential: OutcomeStream,
    config: SimConfig,
    workload_name: str,
) -> None:
    """Checked-mode oracle: the two walks must agree byte for byte.

    On divergence, writes a replay bundle (like every other invariant in
    :mod:`repro.checking`) and raises :class:`InvariantViolation
    <repro.checking.InvariantViolation>` pointing at the first divergent
    access, so ``repro replay`` can re-run exactly the offending window.
    """
    problems: list[str] = []
    ref_index: "int | None" = None
    if vector.num_levels != sequential.num_levels:
        problems.append(
            f"num_levels {vector.num_levels} != {sequential.num_levels}"
        )
    for name in _STREAM_FIELDS:
        va = getattr(vector, name)
        sa = getattr(sequential, name)
        if len(va) != len(sa):
            problems.append(f"{name}: length {len(va)} != {len(sa)}")
            continue
        if not np.array_equal(va, sa):
            at = _first_divergence(va, sa)
            problems.append(
                f"{name}[{at}]: vector {va[at]!r} != sequential {sa[at]!r}"
            )
            if ref_index is None:
                if name in ("llc_when", "llc_op", "llc_block"):
                    # Point the replay at the access causing the event.
                    ref_index = int(sequential.llc_when[at]) if at < len(
                        sequential.llc_when) else None
                elif name != "final_llc_blocks":
                    ref_index = at
    if not problems:
        return
    ctx = checking.CheckContext.for_run(config, workload_name, runner="content")
    ctx.fail(
        "vector-walk-equivalence",
        "vectorized content walk diverged from sequential walk: "
        + "; ".join(problems),
        ref_index=ref_index if ref_index is not None else max(
            vector.num_accesses, sequential.num_accesses, 1) - 1,
    )
