"""The charging kernel: single source of per-access latency/energy charges.

Both simulation paths — the two-phase evaluator
(:mod:`repro.sim.evaluate`, including the vectorized replay's bulk
accounting) and the integrated single-pass simulator
(:mod:`repro.sim.integrated`, including its exclusive-ReDHiP and prefetch
branches) — attribute every cycle and nanojoule through this module.  No
latency/energy arithmetic lives anywhere else in the simulation layer;
``scripts/check_charging_drift.py`` enforces that in CI.

The model (§III-§IV of the paper):

Latency per access
    * every access pays the L1 access delay;
    * predictor schemes add the prediction-table lookup delay (SRAM +
      wire) to every *consulted* L1 miss — "a delay between the L1 and L2
      accesses";
    * each probed level costs its access delay on a hit and its *tag*
      delay on a miss (a parallel probe discovers the miss at tag-compare
      time); a phased level costs tag+data on a hit (serialized) and tag
      on a miss; a way-predicted level costs the access delay on an MRU
      hit, access+data on a non-MRU hit, tag on a miss;
    * main memory is free unless a latency/energy or DRAM model is
      configured — by default all gains come from skipped lookups.

Dynamic energy per access
    * a parallel probe fires both arrays regardless of outcome (the waste
      ReDHiP eliminates); a phased probe fires tag always, data on hit; a
      way-predicted probe fires tag plus a single speculative data way
      (``data_energy / assoc``), plus a second way on a non-MRU hit;
    * predictor schemes pay a table access per consulted lookup and per
      table update, plus recalibration sweep energy;
    * prefetch probes charge the parallel-probe energy under the
      dedicated ``prefetch`` category so reports can split demand from
      prefetch traffic;
    * the Oracle pays nothing (a bound, "not an actual scheme").

Structure
    :class:`ProbePlan` captures a scheme's per-level probe decision
    (parallel / phased / waypred); :class:`AccessCharge` is the
    introspectable description of one probe's charges; and
    :class:`ChargingKernel` applies them, with a scalar API for the
    integrated per-access loop and a bulk NumPy API for the two-phase
    evaluator.  Scalar and bulk share the same precomputed per-level
    constants, which is what makes the integrated ≡ two-phase equivalence
    exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.accounting import CostTable, EnergyLedger, StaticEnergyModel
from repro.energy.params import MachineConfig
from repro.energy.timing import TimingModel, TimingResult

__all__ = [
    "CAT_PROBE",
    "CAT_TAG",
    "CAT_DATA",
    "CAT_LOOKUP",
    "CAT_UPDATE",
    "CAT_RECAL",
    "CAT_PREFETCH",
    "CAT_ACCESS",
    "CAT_FILL",
    "ENERGY_CATEGORIES",
    "COMPONENT_PT",
    "COMPONENT_MEM",
    "PROBE_PARALLEL",
    "PROBE_PHASED",
    "PROBE_WAYPRED",
    "AccessCharge",
    "ProbePlan",
    "ChargingKernel",
    "recal_stall_cycles",
    "resolve_dram_model",
]

# Ledger categories.  Every (component, category) key written by either
# simulation path uses one of these names; reports index them directly.
CAT_PROBE = "probe"        # parallel tag+data probe
CAT_TAG = "tag"            # tag-array access (phased / waypred)
CAT_DATA = "data"          # data-array access (phased hit / waypred way)
CAT_LOOKUP = "lookup"      # prediction-table lookup
CAT_UPDATE = "update"      # prediction-table update
CAT_RECAL = "recal"        # recalibration sweep energy
CAT_PREFETCH = "prefetch"  # prefetch-issued probe
CAT_ACCESS = "access"      # main-memory access
CAT_FILL = "fill"          # optional fill accounting

#: Every category the kernel can charge, in report order.
ENERGY_CATEGORIES = (
    CAT_PROBE, CAT_TAG, CAT_DATA, CAT_LOOKUP, CAT_UPDATE, CAT_RECAL,
    CAT_PREFETCH, CAT_ACCESS, CAT_FILL,
)

COMPONENT_PT = "PT"
COMPONENT_MEM = "MEM"

# Per-level probe modes.
PROBE_PARALLEL = "parallel"
PROBE_PHASED = "phased"
PROBE_WAYPRED = "waypred"


@dataclass(frozen=True)
class ProbePlan:
    """A scheme's per-level probe decision: ``modes[level - 1]`` for
    levels ``1 .. num_levels``.

    The plan covers *how a probed level is accessed*; whether a level is
    probed at all (predictor skip, oracle skip, hit short-circuit) is the
    simulator's control flow and stays outside the kernel.
    """

    modes: tuple[str, ...]

    def __post_init__(self) -> None:
        for mode in self.modes:
            if mode not in (PROBE_PARALLEL, PROBE_PHASED, PROBE_WAYPRED):
                raise ValueError(f"unknown probe mode {mode!r}")

    @classmethod
    def all_parallel(cls, num_levels: int) -> "ProbePlan":
        return cls(modes=(PROBE_PARALLEL,) * num_levels)

    @classmethod
    def for_scheme(cls, num_levels: int, scheme) -> "ProbePlan":
        """Plan for anything with ``phased_levels``/``way_predicted_levels``
        (duck-typed so this module never imports the predictor layer)."""
        modes = []
        for level in range(1, num_levels + 1):
            if level in scheme.phased_levels:
                modes.append(PROBE_PHASED)
            elif level in scheme.way_predicted_levels:
                modes.append(PROBE_WAYPRED)
            else:
                modes.append(PROBE_PARALLEL)
        return cls(modes=tuple(modes))

    def mode(self, level: int) -> str:
        return self.modes[level - 1]


@dataclass(frozen=True)
class AccessCharge:
    """One probe's charges, spelled out: latency plus ledger line items.

    The hot loops use :meth:`ChargingKernel.charge_probe` (same numbers,
    no allocation); this form exists for introspection, reports and the
    kernel's own unit tests, and :meth:`apply` is guaranteed to produce
    exactly what the fast path charges.
    """

    latency: float
    charges: tuple[tuple[str, str, float, int], ...]

    @property
    def energy_nj(self) -> float:
        return float(sum(e * c for (_, _, e, c) in self.charges))

    def apply(self, ledger: EnergyLedger) -> float:
        for component, category, unit_nj, count in self.charges:
            ledger.charge(component, category, unit_nj, count)
        return self.latency


class ChargingKernel:
    """Applies the charging model for one (machine, probe plan) pair.

    Scalar methods serve the integrated per-access loop; ``*_bulk``
    methods serve the two-phase evaluator's NumPy accounting.  Both read
    the same precomputed per-level constants.
    """

    def __init__(
        self,
        machine: MachineConfig,
        plan: ProbePlan | None = None,
        lookup_energy_nj: float | None = None,
        lookup_delay: int | None = None,
    ) -> None:
        self.machine = machine
        num_levels = machine.num_levels
        if plan is None:
            plan = ProbePlan.all_parallel(num_levels)
        if len(plan.modes) != num_levels:
            raise ValueError(
                f"probe plan covers {len(plan.modes)} levels, "
                f"machine has {num_levels}"
            )
        self.plan = plan
        self.num_levels = num_levels
        costs = CostTable(machine)
        self.costs = costs
        rng = range(1, num_levels + 1)
        # Index by level number; slot 0 is padding.
        self.tag_d = [0] + [costs.level_tag_delay(j) for j in rng]
        self.par_d = [0] + [costs.level_parallel_delay(j) for j in rng]
        self.dat_d = [0] + [costs.level_data_delay(j) for j in rng]
        self.tag_e = [0.0] + [costs.level_tag_energy(j) for j in rng]
        self.data_e = [0.0] + [costs.level_data_energy(j) for j in rng]
        self.par_e = [0.0] + [costs.level_parallel_energy(j) for j in rng]
        self.way_e = [0.0] + [
            costs.level_data_energy(j) / machine.level(j).assoc for j in rng
        ]
        self.names = [""] + [machine.level(j).name for j in rng]
        self.modes = ("",) + plan.modes
        self.lookup_energy_nj = (
            lookup_energy_nj if lookup_energy_nj is not None
            else machine.prediction_table.access_energy
        )
        self.lookup_delay = (
            lookup_delay if lookup_delay is not None
            else machine.prediction_table.lookup_delay
        )
        self.pt_update_energy = costs.pt_update_energy

    @classmethod
    def for_scheme(cls, machine: MachineConfig, scheme) -> "ChargingKernel":
        """Kernel for a :class:`~repro.predictors.base.SchemeSpec`: its
        probe plan plus its resolved table-lookup cost."""
        return cls(
            machine,
            plan=scheme.probe_plan(machine.num_levels),
            lookup_energy_nj=scheme.resolve_lookup_energy(machine),
            lookup_delay=scheme.resolve_lookup_delay(machine),
        )

    # ------------------------------------------------------------- scalar
    def charge_l1(self, ledger: EnergyLedger) -> float:
        """Every access starts with one L1 parallel probe."""
        ledger.charge(self.names[1], CAT_PROBE, self.par_e[1], 1)
        return float(self.par_d[1])

    def charge_probe(self, ledger: EnergyLedger, level: int, hit: bool,
                     rank: int = -1, mode: str | None = None) -> float:
        """Charge one demand probe at ``level``; returns its latency.

        ``mode`` overrides the plan's probe mode for this one probe —
        how EHC's predicted-dead LLC probes degrade to phased while the
        rest of the walk keeps the plan's discipline.  ``None`` (the
        default, and every pre-existing call site) charges the plan mode.
        """
        if mode is None:
            mode = self.modes[level]
        if mode == PROBE_PHASED:
            ledger.charge(self.names[level], CAT_TAG, self.tag_e[level], 1)
            if hit:
                ledger.charge(self.names[level], CAT_DATA, self.data_e[level], 1)
                return self.tag_d[level] + self.dat_d[level]
            return self.tag_d[level]
        if mode == PROBE_WAYPRED:
            ledger.charge(self.names[level], CAT_TAG, self.tag_e[level], 1)
            ledger.charge(self.names[level], CAT_DATA, self.way_e[level], 1)
            if hit:
                if rank == 0:
                    return self.par_d[level]
                ledger.charge(self.names[level], CAT_DATA, self.way_e[level], 1)
                return self.par_d[level] + self.dat_d[level]
            return self.tag_d[level]
        ledger.charge(self.names[level], CAT_PROBE, self.par_e[level], 1)
        return self.par_d[level] if hit else self.tag_d[level]

    def describe_probe(self, level: int, hit: bool, rank: int = -1) -> AccessCharge:
        """The :class:`AccessCharge` form of :meth:`charge_probe`."""
        probe = EnergyLedger()
        latency = self.charge_probe(probe, level, hit, rank)
        charges = tuple(
            (c, cat, probe.energy_nj[(c, cat)] / probe.counts[(c, cat)], probe.counts[(c, cat)])
            for (c, cat) in probe.energy_nj
        )
        return AccessCharge(latency=float(latency), charges=charges)

    def charge_lookup(self, ledger: EnergyLedger, count: int = 1) -> float:
        """Prediction-table lookup: energy per consulted table, one wire
        delay (tables are consulted in parallel)."""
        ledger.charge(COMPONENT_PT, CAT_LOOKUP, self.lookup_energy_nj, count)
        return self.lookup_delay

    def charge_memory(self, ledger: EnergyLedger, latency: float,
                      energy_nj: float) -> float:
        """One memory-served access under the flat memory model."""
        if energy_nj > 0.0:
            ledger.charge(COMPONENT_MEM, CAT_ACCESS, energy_nj, 1)
        return latency

    def charge_dram(self, ledger: EnergyLedger, dram_model, block: int) -> float:
        """One memory-served access through a pattern-dependent DRAM model."""
        d_lat, d_energy = dram_model.access(block)
        ledger.charge(COMPONENT_MEM, CAT_ACCESS, d_energy, 1)
        return d_lat

    def charge_prefetch_probes(self, ledger: EnergyLedger, found_level: int) -> None:
        """Probes issued by one prefetch request, charged under the
        ``prefetch`` category (parallel-probe energy, no demand latency)."""
        top = found_level if found_level >= 2 else self.num_levels
        for level in range(2, top + 1):
            ledger.charge(self.names[level], CAT_PREFETCH, self.par_e[level], 1)

    def mlp_adjust(self, lat, mlp: float):
        """Memory-level parallelism: overlap everything beyond the L1
        delay by ``mlp`` (1.0 = the paper's serialized model).  Works on
        scalars and arrays."""
        if mlp == 1.0:
            return lat
        d1 = float(self.par_d[1])
        return d1 + (lat - d1) / mlp

    # --------------------------------------------------------------- bulk
    def charge_l1_bulk(self, ledger: EnergyLedger, n: int) -> np.ndarray:
        """Bulk form of :meth:`charge_l1`: the initial latency vector."""
        ledger.charge(self.names[1], CAT_PROBE, self.par_e[1], n)
        return np.full(n, float(self.par_d[1]), dtype=np.float64)

    def charge_lookup_bulk(self, ledger: EnergyLedger, lat: np.ndarray,
                           consulted: np.ndarray) -> None:
        """Table lookups for every consulted access (gated predictors
        answer some misses without touching the table)."""
        lat[consulted] += self.lookup_delay
        ledger.charge(
            COMPONENT_PT, CAT_LOOKUP, self.lookup_energy_nj, int(consulted.sum())
        )

    def charge_level_bulk(
        self,
        ledger: EnergyLedger,
        lat: np.ndarray,
        level: int,
        hits: np.ndarray,
        misses: np.ndarray,
        n_reach: int,
        n_hits: int,
        hit_rank: np.ndarray | None = None,
        mode: str | None = None,
    ) -> None:
        """Bulk form of :meth:`charge_probe` for every access reaching
        ``level``.  ``hit_rank`` (per-access MRU rank) is only read for
        way-predicted levels; ``mode`` overrides the plan's probe mode
        for this charge (see :meth:`charge_probe`)."""
        if mode is None:
            mode = self.modes[level]
        name = self.names[level]
        if mode == PROBE_PHASED:
            lat[hits] += self.tag_d[level] + self.dat_d[level]
            lat[misses] += self.tag_d[level]
            ledger.charge(name, CAT_TAG, self.tag_e[level], n_reach)
            ledger.charge(name, CAT_DATA, self.data_e[level], n_hits)
        elif mode == PROBE_WAYPRED:
            mru_hits = hits & (hit_rank == 0)
            slow_hits = hits & (hit_rank > 0)
            lat[mru_hits] += self.par_d[level]
            lat[slow_hits] += self.par_d[level] + self.dat_d[level]
            lat[misses] += self.tag_d[level]
            ledger.charge(name, CAT_TAG, self.tag_e[level], n_reach)
            ledger.charge(name, CAT_DATA, self.way_e[level], n_reach)
            ledger.charge(name, CAT_DATA, self.way_e[level], int(slow_hits.sum()))
        else:
            lat[hits] += self.par_d[level]
            lat[misses] += self.tag_d[level]
            ledger.charge(name, CAT_PROBE, self.par_e[level], n_reach)

    def charge_memory_bulk(
        self,
        ledger: EnergyLedger,
        lat: np.ndarray,
        mem_mask: np.ndarray,
        blocks: np.ndarray,
        true_misses: int,
        memory_latency: float = 0.0,
        memory_energy_nj: float = 0.0,
        dram=None,
    ) -> None:
        """Memory charges for every memory-served access.

        With a DRAM model the memory accesses replay in run order — the
        trajectory is scheme-independent, so every scheme sees the same
        bank/row sequence (each evaluation replays a fresh model).
        """
        if dram is not None:
            model = resolve_dram_model(dram)
            mem_lat, mem_energy = model.access_stream(blocks[mem_mask])
            lat[mem_mask] += mem_lat
            ledger.counts[(COMPONENT_MEM, CAT_ACCESS)] += true_misses
            ledger.energy_nj[(COMPONENT_MEM, CAT_ACCESS)] += float(mem_energy.sum())
            return
        if memory_latency > 0.0:
            lat[mem_mask] += memory_latency
        if memory_energy_nj > 0.0:
            ledger.charge(COMPONENT_MEM, CAT_ACCESS, memory_energy_nj, true_misses)

    def charge_fills_bulk(self, ledger: EnergyLedger, h: np.ndarray,
                          true_misses: int, weight: float) -> None:
        """Optional fill accounting (identical across schemes): every
        level is filled by memory fetches, plus by hits below it."""
        if weight <= 0.0:
            return
        for level in range(1, self.num_levels + 1):
            fills = true_misses
            if level < self.num_levels:
                fills += int((h > level).sum())
            ledger.charge(
                self.names[level], CAT_FILL, weight * self.data_e[level], fills
            )

    # -------------------------------------------------------- maintenance
    def charge_predictor_maintenance(self, ledger: EnergyLedger,
                                     table_updates: int, recal_nj: float) -> None:
        """Table updates (one PT access each) plus recalibration energy."""
        ledger.charge(
            COMPONENT_PT, CAT_UPDATE, self.pt_update_energy, int(table_updates)
        )
        if recal_nj:
            ledger.charge(COMPONENT_PT, CAT_RECAL, recal_nj, 1)

    # ------------------------------------------------------ timing/static
    def run_timing(self, core_ids, gaps, latencies, cpis,
                   stall_cycles: float) -> TimingResult:
        """Fold per-access latencies into per-core cycles."""
        return TimingModel(self.machine).run(
            core_ids=core_ids, gaps=gaps, latencies=latencies, cpis=cpis,
            stall_cycles=stall_cycles,
        )

    def static_energy_nj(self, exec_cycles: float, include_pt: bool) -> float:
        """Leakage over the run; the PT leaks only for table schemes."""
        return StaticEnergyModel(self.machine).static_energy_nj(
            exec_cycles, include_pt=include_pt
        )


def recal_stall_cycles(sweeps: int, cost) -> float:
    """Total stall cycles for ``sweeps`` recalibration sweeps at
    ``cost.cycles`` each (shared by the replay kernels)."""
    return float(sweeps * cost.cycles)


def resolve_dram_model(dram):
    """DRAM model for a config's ``dram`` field (``None`` -> no model).

    Keeps the DramModel constructor inside the charging layer so the
    simulation paths never name a cost model directly."""
    if dram is None:
        return None
    from repro.energy.dram import DramConfig, DramModel

    return DramModel(dram if isinstance(dram, DramConfig) else None)
