"""Persistent outcome-stream cache: memoize content walks to disk.

The content walk is the wall-clock bulk of every figure regeneration, and
its result — the frozen :class:`~repro.hierarchy.events.OutcomeStream` —
is a pure function of ``(workload, machine, policy, refs, seed,
replacement, coherent)``: exactly the identity :meth:`SimConfig.cache_key
<repro.sim.config.SimConfig.cache_key>` already pins for the in-process
runner cache.  This module extends that cache across processes: streams
are stored as compressed ``.npz`` files under a cache directory (default
``.repro-cache/``), keyed by ``(workload, *cache_key(), SCHEMA_VERSION)``,
with the stream's :meth:`fingerprint()
<repro.hierarchy.events.OutcomeStream.fingerprint>` embedded at save time
and **re-verified on load** — a corrupt, truncated or tampered entry is
discarded with a warning and the walk re-runs; a cached stream is never
trusted on faith.

Opt-in wiring (never on by default):

``SimConfig(stream_cache="dir")``
    per-config cache directory;
``REPRO_STREAM_CACHE=dir``
    environment-wide: ``1``/``true``/``yes``/``on`` selects the default
    ``.repro-cache/``; any other non-empty value *is* the directory;
    ``0``/``false``/``off``/``no``/empty disables.

``repro cache {ls,clear,verify}`` inspects, empties and re-fingerprints
the cache from the command line.  Bumping :data:`SCHEMA_VERSION` after any
change to the stream layout or the content walk's semantics invalidates
every existing entry (the version is part of the key, so old files simply
stop being addressed; ``repro cache clear`` reclaims the space).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults, telemetry
from repro.hierarchy.events import OutcomeStream

__all__ = [
    "CACHE_ENV",
    "DEFAULT_CACHE_DIR",
    "SCHEMA_VERSION",
    "CacheEntry",
    "StreamCache",
    "resolve_cache",
    "stream_key",
]

#: Bump when the OutcomeStream layout or content-walk semantics change:
#: the version is part of every key, so old entries become unreachable.
SCHEMA_VERSION = 1

#: Environment switch (see module docstring for the value grammar).
CACHE_ENV = "REPRO_STREAM_CACHE"

DEFAULT_CACHE_DIR = ".repro-cache"

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "off", "no"})

#: Array fields persisted per stream, with the dtypes pinned for the
#: fingerprint (same table as OutcomeStream.fingerprint).
_ARRAY_FIELDS = (
    ("core", "<u2"),
    ("block", "<u8"),
    ("write", "u1"),
    ("gap", "<u4"),
    ("hit_level", "i1"),
    ("hit_rank", "i1"),
    ("llc_when", "<i8"),
    ("llc_op", "i1"),
    ("llc_block", "<u8"),
    ("final_llc_blocks", "<u8"),
)


def stream_key(workload_name: str, config) -> tuple:
    """The disk-cache identity of one content trajectory."""
    return (workload_name, *config.cache_key(), SCHEMA_VERSION)


def resolve_cache(config=None) -> "StreamCache | None":
    """The active cache for ``config``, or ``None`` when caching is off.

    An explicit ``SimConfig.stream_cache`` wins; otherwise the
    ``REPRO_STREAM_CACHE`` environment variable is consulted.
    """
    explicit = getattr(config, "stream_cache", None) if config is not None else None
    if explicit:
        return StreamCache(explicit)
    env = os.environ.get(CACHE_ENV, "").strip()
    if env.lower() in _FALSY:
        return None
    if env.lower() in _TRUTHY:
        return StreamCache(DEFAULT_CACHE_DIR)
    return StreamCache(env)


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache file, as reported by ``repro cache ls``."""

    path: Path
    key: tuple | None          # None when the metadata is unreadable
    fingerprint: str | None
    num_accesses: int | None
    size_bytes: int

    @property
    def ok(self) -> bool:
        return self.key is not None


class StreamCache:
    """Compressed, fingerprint-verified on-disk stream store."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------- naming
    def path_for(self, key: tuple) -> Path:
        """Deterministic file path: human-readable prefix + key digest.

        The digest alone identifies the entry (the prefix is for ``ls``
        readability); collisions across different keys are caught at load
        time because the full key is stored inside the file.
        """
        digest = hashlib.blake2b(
            repr(key).encode(), digest_size=10
        ).hexdigest()
        human = "-".join(re.sub(r"[^A-Za-z0-9_.]+", "_", str(part)) for part in key)
        return self.directory / f"{human[:80]}-{digest}.npz"

    # --------------------------------------------------------------- save
    def save(self, key: tuple, stream: OutcomeStream) -> "Path | None":
        """Persist ``stream`` under ``key``; returns ``None`` on give-up.

        The write is atomic — bytes go to a uniquely named temp file
        (outside the ``*.npz`` namespace, so a killed writer never leaves
        a half entry *or* a phantom ``ls`` row) and ``os.replace`` makes
        the entry visible only once complete.  Write failures (ENOSPC, an
        injected ``streamcache.save`` fault) are retried under the bounded
        deterministic-backoff policy — including the directory creation,
        which can hit the same permission/ENOSPC errors as the write
        itself; when every attempt fails, or the failure is not an I/O
        error at all (a pickling error inside ``np.savez``), the save is
        skipped with a warning — a cache is an accelerator, never a
        correctness dependency, so the run continues uncached.
        """
        path = self.path_for(key)
        meta = json.dumps(
            {
                "key": list(key),
                "fingerprint": stream.fingerprint(),
                "num_levels": stream.num_levels,
                "schema_version": SCHEMA_VERSION,
            }
        )
        arrays = {
            name: np.ascontiguousarray(getattr(stream, name), dtype=dtype)
            for name, dtype in _ARRAY_FIELDS
        }
        policy = faults.retry_policy()
        try:
            return faults.run_with_retries(
                "streamcache.save",
                lambda: self._write_entry(path, key, meta, arrays),
                policy,
                retriable=(OSError,),
                detail=path.name,
            )
        except faults.RetryExhausted as exc:
            faults.handled("streamcache.save", "skipped_save",
                           entry=path.name, error=str(exc.last))
            warnings.warn(
                f"stream-cache save of {path.name} failed after "
                f"{policy.attempts} attempts ({exc.last}); continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        except Exception as exc:
            # Non-I/O failures (a dtype/pickling error inside np.savez, a
            # bad array shape) are permanent — retrying cannot help — but
            # they still must not crash the run: skip the save, same as an
            # exhausted retry.
            faults.handled("streamcache.save", "skipped_save",
                           entry=path.name,
                           error=f"{exc.__class__.__name__}: {exc}")
            warnings.warn(
                f"stream-cache save of {path.name} failed "
                f"({exc.__class__.__name__}: {exc}); continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def _write_entry(self, path: Path, key: tuple, meta: str, arrays: dict) -> Path:
        """One atomic write attempt (the ``streamcache.save`` fault site)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        fired = faults.check("streamcache.save", key=str(key[0]))
        try:
            if fired is not None and fired.kind == "enospc":
                raise faults.InjectedFault(
                    28, f"injected ENOSPC writing {tmp.name}"  # errno.ENOSPC
                )
            with open(tmp, "wb") as fh:
                # Uncompressed on purpose: outcome streams are mostly
                # high-entropy block addresses (deflate saves little) and
                # the compressed write dominated cold-run wall time.
                # ``np.load`` reads both formats, so old compressed
                # entries stay valid without a schema bump.
                np.savez(
                    fh, meta=np.frombuffer(meta.encode(), dtype=np.uint8), **arrays
                )
            if fired is not None and fired.kind == "partial_write":
                # A writer killed mid-flush: the temp file is truncated and
                # the rename never happens — the entry must stay invisible.
                data = tmp.read_bytes()
                tmp.write_bytes(data[: len(data) // 2])
                raise faults.InjectedFault(
                    5, f"injected crash mid-write of {tmp.name}"  # errno.EIO
                )
            os.replace(tmp, path)
        except BaseException:
            # Any failure — OSError, a np.savez pickling/dtype error, even
            # KeyboardInterrupt — must not leak the temp file: a sweep of
            # workers each leaking one tmp per attempt fills the disk the
            # cache was supposed to save.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        telemetry.count("stream_cache.save")
        return path

    # --------------------------------------------------------------- load
    def load(self, key: tuple) -> "OutcomeStream | None":
        """Load and *verify* the entry for ``key``.

        Returns ``None`` (after discarding the file with a warning) when
        the entry is missing, unreadable, stored under a different key
        (digest collision or tampering), or fails fingerprint
        re-verification.  A returned stream is therefore bit-identical to
        the walk that produced it.
        """
        path = self.path_for(key)
        if not path.exists():
            telemetry.count("stream_cache.miss")
            return None
        try:
            # Transient I/O errors (including injected ``io_error`` faults)
            # are retried under the bounded deterministic-backoff policy;
            # anything else — corrupt zip, bad dtype, missing field — is a
            # permanent fault and falls straight through to the discard.
            stream, meta = faults.run_with_retries(
                "streamcache.load",
                lambda: self._read_checked(path, key),
                faults.retry_policy(),
                retriable=(OSError,),
                detail=path.name,
            )
        except faults.RetryExhausted as exc:
            if isinstance(exc.last, FileNotFoundError):
                # A concurrent clear()/discard deleted the entry between
                # our existence check and the read: an ordinary miss, not
                # a corrupt entry — nothing to discard or warn about.
                telemetry.count("stream_cache.miss")
                return None
            self._discard(path, f"unreadable after retries ({exc.last})")
            return None
        except Exception as exc:  # corrupt zip, bad dtype, missing field…
            self._discard(path, f"unreadable ({exc.__class__.__name__}: {exc})")
            return None
        if tuple(meta.get("key", ())) != key:
            self._discard(path, "stored under a different key")
            return None
        if stream.fingerprint() != meta.get("fingerprint"):
            self._discard(path, "fingerprint mismatch (stale or corrupt)")
            return None
        telemetry.count("stream_cache.hit")
        return stream

    def _read_checked(self, path: Path, key: tuple) -> tuple[OutcomeStream, dict]:
        """One read attempt (the ``streamcache.load`` fault site).

        ``io_error`` raises a transient :class:`OSError` (retried);
        ``corrupt`` / ``short_read`` damage the on-disk entry itself, so
        the read fails permanently and the discard-and-re-walk recovery
        path runs — exactly what a real bad sector produces.
        """
        fired = faults.check("streamcache.load", key=str(key[0]))
        if fired is not None:
            if fired.kind == "io_error":
                raise faults.InjectedFault(
                    5, f"injected transient read error on {path.name}"
                )
            faults.damage_file(path, fired)
        return self._read(path)

    def _read(self, path: Path) -> tuple[OutcomeStream, dict]:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {name: data[name] for name, _ in _ARRAY_FIELDS}
        return (
            OutcomeStream(
                core=arrays["core"].astype(np.uint16),
                block=arrays["block"].astype(np.uint64),
                write=arrays["write"].astype(bool),
                gap=arrays["gap"].astype(np.uint32),
                hit_level=arrays["hit_level"].astype(np.int8),
                hit_rank=arrays["hit_rank"].astype(np.int8),
                llc_when=arrays["llc_when"].astype(np.int64),
                llc_op=arrays["llc_op"].astype(np.int8),
                llc_block=arrays["llc_block"].astype(np.uint64),
                num_levels=int(meta["num_levels"]),
                final_llc_blocks=arrays["final_llc_blocks"].astype(np.uint64),
            ),
            meta,
        )

    def _discard(self, path: Path, reason: str) -> None:
        # Structured event + counter for the manifest; the warning stays
        # for callers that only watch the warnings stream.  This *is* the
        # recovery path for a bad entry — the caller re-walks — so it is
        # also recorded as a handled fault.
        telemetry.count("stream_cache.reject")
        telemetry.event("stream_cache.discard", entry=path.name, reason=reason)
        faults.handled("streamcache.load", "discard_rewalk",
                       entry=path.name, reason=reason)
        warnings.warn(
            f"discarding stream-cache entry {path.name}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            path.unlink()
        except OSError:
            pass

    # ---------------------------------------------------------- inventory
    def entries(self) -> list[CacheEntry]:
        """All cache files, with metadata where readable (for ``ls``).

        The directory is shared: a concurrent writer's ``load`` discard or
        another process's ``clear()`` can delete a file between the glob
        and our ``stat``/read.  A vanished entry is simply skipped — it no
        longer exists, so it is not part of the inventory — rather than
        aborting the listing (exactly the race two sweep workers sharing
        one cache hit constantly).
        """
        out = []
        if not self.directory.is_dir():
            return out
        for path in sorted(self.directory.glob("*.npz")):
            try:
                size = path.stat().st_size
            except OSError:
                continue  # deleted between glob and stat
            try:
                with np.load(path) as data:
                    meta = json.loads(bytes(data["meta"]).decode())
                    n = int(len(data["block"]))
                out.append(
                    CacheEntry(
                        path=path,
                        key=tuple(meta.get("key", ())) or None,
                        fingerprint=meta.get("fingerprint"),
                        num_accesses=n,
                        size_bytes=size,
                    )
                )
            except FileNotFoundError:
                continue  # deleted between stat and read
            except Exception:
                out.append(CacheEntry(path=path, key=None, fingerprint=None,
                                      num_accesses=None, size_bytes=size))
        return out

    def verify(self) -> tuple[list[Path], list[Path]]:
        """Re-fingerprint every entry; returns ``(ok, bad)`` path lists.

        Bad entries (unreadable, or whose arrays no longer hash to the
        stored fingerprint) are **not** deleted here — ``verify`` is a
        read-only audit; ``load`` and ``clear`` do the discarding.
        """
        ok, bad = [], []
        for entry in self.entries():
            if entry.key is None:
                bad.append(entry.path)
                continue
            try:
                stream, meta = self._read(entry.path)
            except FileNotFoundError:
                continue  # deleted since entries(); nothing left to audit
            except Exception:
                bad.append(entry.path)
                continue
            if stream.fingerprint() == meta.get("fingerprint"):
                ok.append(entry.path)
            else:
                bad.append(entry.path)
        return ok, bad

    def clear(self) -> int:
        """Delete every cache file; returns the number removed.

        Also sweeps ``*.npz.tmp-*`` leftovers from writers that died
        before their atomic rename (they are invisible to ``ls`` and
        ``verify`` but still hold disk space).
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        for pattern in ("*.npz", "*.npz.tmp-*"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def discard_bad(self) -> list[Path]:
        """Delete every entry :meth:`verify` flags; returns what was removed.

        The mutating companion to the read-only audit — ``repro cache
        verify --discard`` uses it so a cache poisoned by a crash can be
        repaired in one command (and still exits non-zero, so CI notices).
        """
        _ok, bad = self.verify()
        removed = []
        for path in bad:
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                pass
            telemetry.count("stream_cache.reject")
            telemetry.event("stream_cache.discard", entry=path.name,
                            reason="failed verify (--discard)")
        return removed
