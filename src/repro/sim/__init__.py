"""Simulation engines: the two-phase flow (content walk + scheme
evaluation), the integrated single-pass reference simulator, and the
caching experiment runner."""

from repro.sim.config import SimConfig, bench_config, default_recal_period
from repro.sim.content import ContentSimulator, merge_order
from repro.sim.evaluate import SchemeResult, evaluate_scheme, replay_predictor
from repro.sim.integrated import IntegratedSimulator, PrefetchConfig
from repro.sim.parallel import default_workers, prewarm_streams
from repro.sim.streamcache import StreamCache, resolve_cache, stream_key
from repro.sim.vector_replay import replay_redhip_vectorized
from repro.sim.report import (
    ExperimentResult,
    add_average,
    dynamic_energy_table,
    format_table,
    hit_rate_table,
    perf_energy_table,
    speedup_table,
)
from repro.sim.runner import ExperimentRunner

__all__ = [
    "ContentSimulator",
    "ExperimentResult",
    "ExperimentRunner",
    "IntegratedSimulator",
    "PrefetchConfig",
    "SchemeResult",
    "SimConfig",
    "StreamCache",
    "add_average",
    "bench_config",
    "default_recal_period",
    "default_workers",
    "prewarm_streams",
    "dynamic_energy_table",
    "evaluate_scheme",
    "format_table",
    "hit_rate_table",
    "merge_order",
    "perf_energy_table",
    "replay_predictor",
    "replay_redhip_vectorized",
    "resolve_cache",
    "speedup_table",
    "stream_key",
]
