"""Phase 2: scheme evaluation over a frozen outcome stream.

Given the scheme-independent content trajectory from
:mod:`repro.sim.content`, this module decides *which* levels each access
reaches under one scheme and what the predictor answered; every latency
and energy charge for those decisions is applied by the charging kernel
(:mod:`repro.sim.charging` — see its docstring for the full policy, which
the integrated simulator shares).

A predicted LLC miss skips every level below L1: no probes, no latency
beyond L1 + table, straight to (free) memory.  False negatives are
structurally impossible for the shipped predictors; the evaluator enforces
this with a hard error, because a silent false negative would mean serving
stale data in real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import checking, telemetry
from repro.energy.accounting import EnergyLedger
from repro.energy.params import MachineConfig
from repro.energy.timing import TimingResult
from repro.hierarchy.events import EVENT_FILL, OutcomeStream
from repro.predictors.base import PresencePredictor, SchemeSpec
from repro.sim import vector_replay
from repro.sim.charging import PROBE_PHASED, ChargingKernel
from repro.util.validation import ReproError
from repro.workloads.trace import Workload

__all__ = [
    "SchemeResult",
    "evaluate_scheme",
    "replay_predictor",
    "replay_level_predictor",
    "replay_ehc",
]


@dataclass
class SchemeResult:
    """Aggregated outcome of one (workload, scheme) evaluation."""

    scheme: str
    workload: str
    machine: str
    timing: TimingResult
    ledger: EnergyLedger
    static_nj: float
    hit_rates: dict[int, float]
    level_lookups: dict[int, int]
    level_hits: dict[int, int]
    l1_misses: int = 0
    skips: int = 0                 # predicted-miss accesses sent to memory
    false_positives: int = 0       # predicted present but absent everywhere
    true_misses: int = 0           # accesses served by memory
    recal_stall_cycles: float = 0.0
    predictor_stats: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def exec_cycles(self) -> float:
        return self.timing.exec_cycles

    @property
    def dynamic_nj(self) -> float:
        return self.ledger.total_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.static_nj

    @property
    def skip_coverage(self) -> float:
        """Fraction of true LLC misses the scheme skipped (Oracle = 1.0)."""
        return self.skips / self.true_misses if self.true_misses else 0.0

    def speedup_over(self, base: "SchemeResult") -> float:
        return self.timing.speedup_over(base.timing)

    def dynamic_ratio(self, base: "SchemeResult") -> float:
        return self.dynamic_nj / base.dynamic_nj if base.dynamic_nj else 1.0

    def total_ratio(self, base: "SchemeResult") -> float:
        return self.total_nj / base.total_nj if base.total_nj else 1.0

    def perf_energy_metric(self, base: "SchemeResult") -> float:
        """Figure 8's metric: speedup x total-energy-saving product.

        Both factors expressed as (1 + gain): a scheme with 8 % speedup and
        22 % total energy saving scores 1.08 x 1.22 ~ 1.32.
        """
        return self.speedup_over(base) * (2.0 - self.total_ratio(base))


def replay_predictor(
    stream: OutcomeStream, predictor: PresencePredictor
) -> tuple[np.ndarray, np.ndarray, float]:
    """Sequentially replay L1-miss lookups against the LLC event stream.

    Returns the per-access prediction array (only meaningful where the
    access missed L1), the per-access *consulted* array (False where a
    gated predictor answered without touching its table), and the total
    recalibration stall cycles.  Event ordering matches hardware:
    fills/evictions caused by access *i* are applied after access *i*'s
    lookup (the lookup races ahead of the fill).
    """
    h = stream.hit_level
    n = len(h)
    predicted = np.ones(n, dtype=bool)
    consulted = np.zeros(n, dtype=bool)
    miss_mask = h != 1
    miss_idx = np.nonzero(miss_mask)[0].tolist()
    miss_blocks = stream.block[miss_mask].tolist()

    when = stream.llc_when.tolist()
    ops = stream.llc_op.tolist()
    eblocks = stream.llc_block.tolist()
    m = len(when)

    lookup = predictor.predict_present
    fill = predictor.on_llc_fill
    evict = predictor.on_llc_evict
    note = predictor.note_l1_miss

    stall = 0.0
    ei = 0
    out = []
    consults = []
    for pos, i in enumerate(miss_idx):
        while ei < m and when[ei] < i:
            if ops[ei] == EVENT_FILL:
                fill(eblocks[ei])
            else:
                evict(eblocks[ei])
            ei += 1
        out.append(lookup(miss_blocks[pos]))
        consults.append(predictor.last_consulted)
        stall += note()
    while ei < m:  # drain so predictor telemetry covers the full run
        if ops[ei] == EVENT_FILL:
            fill(eblocks[ei])
        else:
            evict(eblocks[ei])
        ei += 1
    predicted[miss_mask] = np.asarray(out, dtype=bool) if out else False
    consulted[miss_mask] = np.asarray(consults, dtype=bool) if consults else False
    return predicted, consulted, stall


def _per_access_pcs(stream: OutcomeStream, workload: Workload) -> np.ndarray:
    """Per-access program counters in the merged multi-core order.

    The outcome stream deliberately carries no PCs (the content walk is
    PC-blind); the level predictor's PC^block index reconstructs them
    from the workload traces through the same memoized merge order both
    simulation paths share.
    """
    from repro.sim.content import merge_order

    merged_core, merged_idx = merge_order(workload)
    n = stream.num_accesses
    merged_core = merged_core[:n]
    merged_idx = merged_idx[:n]
    pcs = np.empty(n, dtype=np.uint64)
    for core, trace in enumerate(workload.traces):
        sel = merged_core == core
        pcs[sel] = trace.pc[merged_idx[sel]]
    return pcs


def replay_level_predictor(
    stream: OutcomeStream, predictor, pcs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """Sequentially replay level-prediction lookups over the event stream.

    Returns per-access predicted levels (0 = memory/no prediction),
    per-access confidence flags, and the total recalibration stall
    cycles.  Event interleaving matches :func:`replay_predictor`: events
    caused by earlier accesses land before access *i*'s lookup, access
    *i*'s own events land before the next miss's lookup, and the train
    step observes the true outcome between the lookup and the time
    advance — the same order the integrated loop performs.
    """
    h = stream.hit_level
    n = len(h)
    pred_level = np.zeros(n, dtype=np.int64)
    confident = np.zeros(n, dtype=bool)
    miss_mask = h != 1
    miss_idx = np.nonzero(miss_mask)[0].tolist()
    miss_blocks = stream.block[miss_mask].tolist()
    miss_pcs = pcs[miss_mask].tolist()
    miss_h = h[miss_mask].tolist()

    when = stream.llc_when.tolist()
    ops = stream.llc_op.tolist()
    eblocks = stream.llc_block.tolist()
    m = len(when)

    predict = predictor.predict
    train = predictor.train
    fill = predictor.on_llc_fill
    evict = predictor.on_llc_evict
    note = predictor.note_l1_miss

    stall = 0.0
    ei = 0
    levels_out = []
    conf_out = []
    for pos, i in enumerate(miss_idx):
        while ei < m and when[ei] < i:
            if ops[ei] == EVENT_FILL:
                fill(eblocks[ei])
            else:
                evict(eblocks[ei])
            ei += 1
        level, conf = predict(miss_pcs[pos], miss_blocks[pos])
        levels_out.append(level)
        conf_out.append(conf)
        train(miss_pcs[pos], miss_blocks[pos], miss_h[pos])
        stall += note()
    while ei < m:  # drain so predictor telemetry covers the full run
        if ops[ei] == EVENT_FILL:
            fill(eblocks[ei])
        else:
            evict(eblocks[ei])
        ei += 1
    if levels_out:
        pred_level[miss_mask] = np.asarray(levels_out, dtype=np.int64)
        confident[miss_mask] = np.asarray(conf_out, dtype=bool)
    return pred_level, confident, stall


def replay_ehc(
    stream: OutcomeStream, predictor
) -> tuple[np.ndarray, float]:
    """Sequentially replay expected-hit-count lookups over the events.

    Returns the per-access predicted-dead flags (meaningful at L1
    misses) and the total recalibration stall cycles.  Per miss the
    order is: prior events, dead-block lookup, LLC-hit observation (when
    the walk will hit at the LLC), time advance — then the miss's own
    events before the next lookup, exactly as the integrated loop does.
    """
    h = stream.hit_level
    n = len(h)
    num_levels = stream.num_levels
    dead = np.zeros(n, dtype=bool)
    miss_mask = h != 1
    miss_idx = np.nonzero(miss_mask)[0].tolist()
    miss_blocks = stream.block[miss_mask].tolist()
    miss_h = h[miss_mask].tolist()

    when = stream.llc_when.tolist()
    ops = stream.llc_op.tolist()
    eblocks = stream.llc_block.tolist()
    m = len(when)

    predict = predictor.predict_dead
    observe = predictor.observe_hit
    fill = predictor.on_llc_fill
    evict = predictor.on_llc_evict
    note = predictor.note_l1_miss

    stall = 0.0
    ei = 0
    out = []
    for pos, i in enumerate(miss_idx):
        while ei < m and when[ei] < i:
            if ops[ei] == EVENT_FILL:
                fill(eblocks[ei])
            else:
                evict(eblocks[ei])
            ei += 1
        out.append(predict(miss_blocks[pos]))
        if miss_h[pos] == num_levels:
            observe(miss_blocks[pos])
        stall += note()
    while ei < m:
        if ops[ei] == EVENT_FILL:
            fill(eblocks[ei])
        else:
            evict(eblocks[ei])
        ei += 1
    if out:
        dead[miss_mask] = np.asarray(out, dtype=bool)
    return dead, stall


def _assert_replay_equivalent(
    stream: OutcomeStream,
    scheme: SchemeSpec,
    machine: MachineConfig,
    predictor: PresencePredictor,
    predicted: np.ndarray,
    consulted: np.ndarray,
    stall: float,
) -> None:
    """Checked mode: the vectorized replay must match a sequential re-run.

    Builds a second fresh predictor, replays it sequentially, and compares
    every observable the evaluation consumes — per-access predictions and
    consults, stall cycles, final table bits, mirror counts, and the
    telemetry dict.  Any divergence is a bug in the vectorized kernel (or
    a predictor that wrongly passed :func:`vector_replay.eligible`).
    """
    reference = scheme.build_predictor(machine)
    ref_pred, ref_cons, ref_stall = replay_predictor(stream, reference)
    problems = []
    if not np.array_equal(predicted, ref_pred):
        bad = np.nonzero(predicted != ref_pred)[0]
        problems.append(
            f"{len(bad)} prediction(s) differ (first at access {int(bad[0])})"
        )
    if not np.array_equal(consulted, ref_cons):
        problems.append("consulted mask differs")
    if stall != ref_stall:
        problems.append(f"stall {stall} != sequential {ref_stall}")
    if not np.array_equal(predictor.table._bits, reference.table._bits):
        problems.append("final table bits differ")
    if not np.array_equal(predictor.mirror._counts, reference.mirror._counts):
        problems.append("final mirror counts differ")
    if predictor.stats() != reference.stats():
        problems.append(
            f"telemetry differs: {predictor.stats()} != {reference.stats()}"
        )
    if problems:
        raise ReproError(
            f"vectorized replay diverged from sequential for scheme "
            f"{scheme.name!r}: " + "; ".join(problems)
        )


def evaluate_scheme(
    stream: OutcomeStream,
    machine: MachineConfig,
    scheme: SchemeSpec,
    workload: Workload,
    fill_energy_weight: float = 0.0,
    memory_latency: float = 0.0,
    memory_energy_nj: float = 0.0,
    mlp: float = 1.0,
    dram=None,
    checked: "bool | None" = None,
) -> SchemeResult:
    """Attribute latency and energy of ``scheme`` over the content stream.

    ``memory_latency``/``memory_energy_nj`` default to the paper's free
    data store; when non-zero, every memory-served access is charged the
    same way under every scheme (prediction changes which *caches* are
    probed, never whether memory is reached), which dilutes relative gains
    — the sensitivity the ``ext-memory`` experiment studies.

    Plain ReDHiP predictors replay through the epoch-batched NumPy kernel
    (:mod:`repro.sim.vector_replay`) unless ``REPRO_NO_VECTOR_REPLAY`` is
    set; ``checked`` (default: the ``REPRO_CHECKED`` environment) replays
    *both* paths and raises if they diverge in any observable — the
    equivalence oracle for the vectorized kernel.
    """
    # The zoo schemes walk (or skip) levels in patterns the binary
    # predicted-present flow below cannot express; they get dedicated
    # accounting paths that consume the same kernel and the same frozen
    # stream, so the existing flow stays byte-for-byte untouched.
    if scheme.kind in ("levelpred", "oracle_level"):
        return _evaluate_levelpred(
            stream, machine, scheme, workload,
            fill_energy_weight=fill_energy_weight,
            memory_latency=memory_latency,
            memory_energy_nj=memory_energy_nj,
            mlp=mlp, dram=dram, checked=checked,
        )
    if scheme.kind == "ehc":
        return _evaluate_ehc(
            stream, machine, scheme, workload,
            fill_energy_weight=fill_energy_weight,
            memory_latency=memory_latency,
            memory_energy_nj=memory_energy_nj,
            mlp=mlp, dram=dram, checked=checked,
        )

    kernel = ChargingKernel.for_scheme(machine, scheme)
    ledger = EnergyLedger()
    h = stream.hit_level
    n = stream.num_accesses
    num_levels = stream.num_levels
    miss_mask = h != 1
    l1_misses = int(miss_mask.sum())
    true_misses = int((h == 0).sum())

    # ---- prediction ------------------------------------------------------
    predictor = None
    stall = 0.0
    consulted = np.zeros(n, dtype=bool)
    if checked is None:
        checked = checking.enabled(None)
    if scheme.kind == "predictor":
        predictor = scheme.build_predictor(machine)
        with telemetry.span(
            "replay", scheme=scheme.name, workload=workload.name
        ) as replay_span:
            if vector_replay.eligible(predictor) and not vector_replay.vector_replay_disabled():
                replay_span.tag(path="vector")
                telemetry.count("replay.vector")
                predicted, consulted, stall = vector_replay.replay_redhip_vectorized(
                    stream, predictor
                )
                if checked:
                    with telemetry.span("replay_equivalence_check"):
                        _assert_replay_equivalent(
                            stream, scheme, machine, predictor, predicted,
                            consulted, stall,
                        )
            else:
                replay_span.tag(path="sequential")
                telemetry.count("replay.sequential")
                predicted, consulted, stall = replay_predictor(stream, predictor)
        fn = int((~predicted & (h >= 2)).sum())
        if fn:
            raise ReproError(
                f"scheme {scheme.name!r} produced {fn} false negatives — "
                "it would serve stale data in hardware"
            )
    elif scheme.kind == "oracle":
        predicted = h != 0
    else:
        predicted = np.ones(n, dtype=bool)

    skips = int((~predicted & (h == 0) & miss_mask).sum())
    false_positives = int((predicted & (h == 0)).sum()) if scheme.skips_on_predicted_miss else 0

    # The accounting stages below are pure NumPy over frozen arrays; the
    # span makes their share of the wall time visible in `repro stats`.
    with telemetry.span("energy_accounting", scheme=scheme.name,
                        workload=workload.name):
        # ---- latency + probe energy ------------------------------------------
        lat = kernel.charge_l1_bulk(ledger, n)

        if scheme.consults_table:
            # Gated predictors answer some misses without a table consult;
            # only real consults pay the lookup delay and energy.
            kernel.charge_lookup_bulk(ledger, lat, consulted)

        # Per-level reach/hit masks, computed once here; the kernel turns
        # them into latency and per-category energy charges.
        level_tallies: dict[int, tuple[int, int]] = {}
        for level in range(2, num_levels + 1):
            reach = (h == 0) | (h >= level)
            if scheme.skips_on_predicted_miss:
                reach = reach & predicted
            hits = reach & (h == level)
            misses = reach & (h != level)
            n_reach = int(reach.sum())
            n_hits = int(hits.sum())
            level_tallies[level] = (n_reach, n_hits)
            kernel.charge_level_bulk(
                ledger, lat, level, hits, misses, n_reach, n_hits,
                hit_rank=stream.hit_rank,
            )

        # ---- main memory (the paper's free data store unless configured) -----
        kernel.charge_memory_bulk(
            ledger, lat, h == 0, stream.block, true_misses,
            memory_latency=memory_latency, memory_energy_nj=memory_energy_nj,
            dram=dram,
        )

        # ---- fills (optional accounting, identical across schemes) -----------
        kernel.charge_fills_bulk(ledger, h, true_misses, fill_energy_weight)

        # ---- memory-level parallelism (1.0 = the paper's serialized model) ---
        lat = kernel.mlp_adjust(lat, mlp)

        # ---- predictor maintenance -------------------------------------------
        predictor_stats: dict = {}
        if predictor is not None:
            kernel.charge_predictor_maintenance(
                ledger, getattr(predictor, "table_updates", 0),
                predictor.maintenance_energy_nj(),
            )
            predictor_stats = predictor.stats()

        # ---- timing ------------------------------------------------------------
        timing = kernel.run_timing(
            core_ids=stream.core.astype(np.int64),
            gaps=stream.gap,
            latencies=lat,
            cpis=workload.cpis,
            stall_cycles=stall,
        )
        static_nj = kernel.static_energy_nj(
            timing.exec_cycles, include_pt=scheme.consults_table
        )

        # ---- per-level accounting under this scheme ---------------------------
        level_lookups = {1: n}
        level_hits = {1: n - l1_misses}
        for level, (n_reach, n_hits) in level_tallies.items():
            level_lookups[level] = n_reach
            level_hits[level] = n_hits
        hit_rates = {
            lvl: (level_hits[lvl] / level_lookups[lvl] if level_lookups[lvl] else 0.0)
            for lvl in level_lookups
        }

        return SchemeResult(
            scheme=scheme.name,
            workload=workload.name,
            machine=machine.name,
            timing=timing,
            ledger=ledger,
            static_nj=static_nj,
            hit_rates=hit_rates,
            level_lookups=level_lookups,
            level_hits=level_hits,
            l1_misses=l1_misses,
            skips=skips,
            false_positives=false_positives,
            true_misses=true_misses,
            recal_stall_cycles=stall,
            predictor_stats=predictor_stats,
        )


def _evaluate_levelpred(
    stream: OutcomeStream,
    machine: MachineConfig,
    scheme: SchemeSpec,
    workload: Workload,
    *,
    fill_energy_weight: float,
    memory_latency: float,
    memory_energy_nj: float,
    mlp: float,
    dram,
    checked: "bool | None",
) -> SchemeResult:
    """Level prediction (``levelpred``) and its oracle (``oracle_level``).

    Access flow per L1 miss: a confident presence miss skips every level
    (ReDHiP's move); a confident level prediction pays exactly one probe
    at the predicted level, plus — on a mispredict — the full serial
    recovery walk from L2; no confident prediction walks serially.  The
    oracle variant probes exactly the true hit level with no table.
    """
    kernel = ChargingKernel.for_scheme(machine, scheme)
    ledger = EnergyLedger()
    h = stream.hit_level
    n = stream.num_accesses
    num_levels = stream.num_levels
    miss_mask = h != 1
    l1_misses = int(miss_mask.sum())
    true_misses = int((h == 0).sum())
    if checked is None:
        checked = checking.enabled(None)

    predictor = None
    stall = 0.0
    if scheme.kind == "levelpred":
        predictor = scheme.build_predictor(machine)
        pcs = _per_access_pcs(stream, workload)
        with telemetry.span(
            "replay", scheme=scheme.name, workload=workload.name
        ) as replay_span:
            replay_span.tag(path="sequential")
            telemetry.count("replay.sequential")
            telemetry.count("replay.levelpred")
            pred_level, confident, stall = replay_level_predictor(
                stream, predictor, pcs
            )
        skip_mask = miss_mask & confident & (pred_level == 0)
        fn = int((skip_mask & (h >= 2)).sum())
        if fn:
            raise ReproError(
                f"scheme {scheme.name!r} produced {fn} false negatives — "
                "it would serve stale data in hardware"
            )
        single_mask = miss_mask & confident & (pred_level >= 2)
        unconfident_mask = miss_mask & ~confident
        false_positives = int((miss_mask & ~skip_mask & (h == 0)).sum())
    else:  # oracle_level: perfect level knowledge, no hardware
        pred_level = h.astype(np.int64)
        skip_mask = miss_mask & (h == 0)
        single_mask = miss_mask & (h >= 2)
        unconfident_mask = np.zeros(n, dtype=bool)
        false_positives = 0

    mispredict_mask = single_mask & (h != pred_level)
    correct_mask = single_mask & ~mispredict_mask
    walk_mask = unconfident_mask | mispredict_mask
    skips = int(skip_mask.sum())

    with telemetry.span("energy_accounting", scheme=scheme.name,
                        workload=workload.name):
        lat = kernel.charge_l1_bulk(ledger, n)
        if scheme.consults_table:
            kernel.charge_lookup_bulk(ledger, lat, miss_mask)

        # Two charge passes per level: the serial-walk probes (unconfident
        # walks + mispredict recovery walks) and the single predicted-level
        # probes.  A mispredicting access can legitimately probe the same
        # level twice — once as its confident single, once again inside
        # its recovery walk — which is why the passes stay separate.
        level_tallies: dict[int, tuple[int, int]] = {}
        for level in range(2, num_levels + 1):
            walk_reach = walk_mask & ((h == 0) | (h >= level))
            walk_hits = walk_reach & (h == level)
            walk_misses = walk_reach & (h != level)
            singles_here = single_mask & (pred_level == level)
            single_hits = singles_here & correct_mask
            single_misses = singles_here & mispredict_mask
            n_walk = int(walk_reach.sum())
            n_walk_hits = int(walk_hits.sum())
            n_singles = int(singles_here.sum())
            n_single_hits = int(single_hits.sum())
            kernel.charge_level_bulk(
                ledger, lat, level, walk_hits, walk_misses, n_walk,
                n_walk_hits, hit_rank=stream.hit_rank,
            )
            kernel.charge_level_bulk(
                ledger, lat, level, single_hits, single_misses, n_singles,
                n_single_hits, hit_rank=stream.hit_rank,
            )
            level_tallies[level] = (n_walk + n_singles,
                                    n_walk_hits + n_single_hits)

        kernel.charge_memory_bulk(
            ledger, lat, h == 0, stream.block, true_misses,
            memory_latency=memory_latency, memory_energy_nj=memory_energy_nj,
            dram=dram,
        )
        kernel.charge_fills_bulk(ledger, h, true_misses, fill_energy_weight)
        lat = kernel.mlp_adjust(lat, mlp)

        predictor_stats: dict = {}
        if predictor is not None:
            kernel.charge_predictor_maintenance(
                ledger, getattr(predictor, "table_updates", 0),
                predictor.maintenance_energy_nj(),
            )
            predictor_stats = predictor.stats()

        timing = kernel.run_timing(
            core_ids=stream.core.astype(np.int64),
            gaps=stream.gap,
            latencies=lat,
            cpis=workload.cpis,
            stall_cycles=stall,
        )
        static_nj = kernel.static_energy_nj(
            timing.exec_cycles, include_pt=scheme.consults_table
        )

        level_lookups = {1: n}
        level_hits = {1: n - l1_misses}
        for level, (n_reach, n_hits) in level_tallies.items():
            level_lookups[level] = n_reach
            level_hits[level] = n_hits
        hit_rates = {
            lvl: (level_hits[lvl] / level_lookups[lvl] if level_lookups[lvl] else 0.0)
            for lvl in level_lookups
        }

    if checked and scheme.kind == "levelpred":
        checking.check_levelpred_conservation(
            ctx=checking.evaluation_context(machine.name, workload.name,
                                            scheme.name),
            l1_misses=l1_misses,
            skips=skips,
            correct_singles=int(correct_mask.sum()),
            mispredicts=int(mispredict_mask.sum()),
            unconfident=int(unconfident_mask.sum()),
            walks=int(walk_mask.sum()),
            walk_reach_l2=int((walk_mask & ((h == 0) | (h >= 2))).sum()),
        )

    return SchemeResult(
        scheme=scheme.name,
        workload=workload.name,
        machine=machine.name,
        timing=timing,
        ledger=ledger,
        static_nj=static_nj,
        hit_rates=hit_rates,
        level_lookups=level_lookups,
        level_hits=level_hits,
        l1_misses=l1_misses,
        skips=skips,
        false_positives=false_positives,
        true_misses=true_misses,
        recal_stall_cycles=stall,
        predictor_stats=predictor_stats,
    )


def _evaluate_ehc(
    stream: OutcomeStream,
    machine: MachineConfig,
    scheme: SchemeSpec,
    workload: Workload,
    *,
    fill_energy_weight: float,
    memory_latency: float,
    memory_energy_nj: float,
    mlp: float,
    dram,
    checked: "bool | None",
) -> SchemeResult:
    """Expected-hit-count evaluation: full walk, but LLC probes for
    predicted-dead blocks degrade to phased (tag-then-data) mode.

    No level is ever skipped, so ``skips``/``false_positives`` stay 0 and
    there is no false-negative hazard — the prediction only chooses how
    the LLC probe is issued.
    """
    kernel = ChargingKernel.for_scheme(machine, scheme)
    ledger = EnergyLedger()
    h = stream.hit_level
    n = stream.num_accesses
    num_levels = stream.num_levels
    miss_mask = h != 1
    l1_misses = int(miss_mask.sum())
    true_misses = int((h == 0).sum())
    if checked is None:
        checked = checking.enabled(None)

    predictor = scheme.build_predictor(machine)
    with telemetry.span(
        "replay", scheme=scheme.name, workload=workload.name
    ) as replay_span:
        replay_span.tag(path="sequential")
        telemetry.count("replay.sequential")
        telemetry.count("replay.ehc")
        dead, stall = replay_ehc(stream, predictor)

    with telemetry.span("energy_accounting", scheme=scheme.name,
                        workload=workload.name):
        lat = kernel.charge_l1_bulk(ledger, n)
        kernel.charge_lookup_bulk(ledger, lat, miss_mask)

        level_tallies: dict[int, tuple[int, int]] = {}
        for level in range(2, num_levels + 1):
            reach = (h == 0) | (h >= level)
            hits = reach & (h == level)
            misses = reach & (h != level)
            n_reach = int(reach.sum())
            n_hits = int(hits.sum())
            level_tallies[level] = (n_reach, n_hits)
            if level == num_levels:
                # Predicted-dead blocks fire the LLC in phased mode; the
                # rest keep the plan's discipline.  Two charge passes,
                # disjoint masks.
                live = reach & ~dead
                gated = reach & dead
                kernel.charge_level_bulk(
                    ledger, lat, level, hits & ~dead, misses & ~dead,
                    int(live.sum()), int((hits & ~dead).sum()),
                    hit_rank=stream.hit_rank,
                )
                kernel.charge_level_bulk(
                    ledger, lat, level, hits & dead, misses & dead,
                    int(gated.sum()), int((hits & dead).sum()),
                    hit_rank=stream.hit_rank, mode=PROBE_PHASED,
                )
            else:
                kernel.charge_level_bulk(
                    ledger, lat, level, hits, misses, n_reach, n_hits,
                    hit_rank=stream.hit_rank,
                )

        kernel.charge_memory_bulk(
            ledger, lat, h == 0, stream.block, true_misses,
            memory_latency=memory_latency, memory_energy_nj=memory_energy_nj,
            dram=dram,
        )
        kernel.charge_fills_bulk(ledger, h, true_misses, fill_energy_weight)
        lat = kernel.mlp_adjust(lat, mlp)

        kernel.charge_predictor_maintenance(
            ledger, getattr(predictor, "table_updates", 0),
            predictor.maintenance_energy_nj(),
        )
        predictor_stats = predictor.stats()

        timing = kernel.run_timing(
            core_ids=stream.core.astype(np.int64),
            gaps=stream.gap,
            latencies=lat,
            cpis=workload.cpis,
            stall_cycles=stall,
        )
        static_nj = kernel.static_energy_nj(
            timing.exec_cycles, include_pt=scheme.consults_table
        )

        level_lookups = {1: n}
        level_hits = {1: n - l1_misses}
        for level, (n_reach, n_hits) in level_tallies.items():
            level_lookups[level] = n_reach
            level_hits[level] = n_hits
        hit_rates = {
            lvl: (level_hits[lvl] / level_lookups[lvl] if level_lookups[lvl] else 0.0)
            for lvl in level_lookups
        }

    if checked:
        checking.check_ehc_counters(
            predictor,
            checking.evaluation_context(machine.name, workload.name,
                                        scheme.name),
        )

    return SchemeResult(
        scheme=scheme.name,
        workload=workload.name,
        machine=machine.name,
        timing=timing,
        ledger=ledger,
        static_nj=static_nj,
        hit_rates=hit_rates,
        level_lookups=level_lookups,
        level_hits=level_hits,
        l1_misses=l1_misses,
        skips=0,
        false_positives=0,
        true_misses=true_misses,
        recal_stall_cycles=stall,
        predictor_stats=predictor_stats,
    )
