"""The integrated single-pass simulator.

Runs content, prediction, timing and energy in one loop — the classical
simulator organization.  It exists for three reasons:

1. **Reference implementation**: for inclusive/hybrid runs without
   prefetching it must agree with the two-phase path (content walk +
   evaluator); the test suite asserts this equivalence, which protects both
   implementations against drift.
2. **Prefetching** (Figures 14/15): prefetches change cache contents, so
   the shared-content-trajectory assumption breaks and the scheme must sit
   in the loop.
3. **Exclusive ReDHiP** (Figure 13): the per-level prediction-table stack
   changes which levels are probed based on per-level state that only
   exists during the walk.

All latency/energy charges go through the same charging kernel as the
two-phase path (:mod:`repro.sim.charging` — see its docstring for the
policy), so the equivalence is structural, not duplicated; prefetch probes
are charged to the kernel's ``prefetch`` category so Figure 15 can show
where the prefetch energy goes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import checking, telemetry
from repro.core.exclusive import ExclusiveReDHiP
from repro.energy.accounting import EnergyLedger
from repro.energy.timing import TimingResult
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.hierarchy.inclusion import InclusionPolicy
from repro.predictors.base import SchemeSpec
from repro.prefetch.stride import StridePrefetcher
from repro.sim.charging import PROBE_PHASED, ChargingKernel, resolve_dram_model
from repro.sim.config import SimConfig
from repro.sim.content import merge_order
from repro.sim.evaluate import SchemeResult
from repro.util.validation import ConfigError, ReproError
from repro.workloads.trace import Workload

__all__ = ["IntegratedSimulator", "PrefetchConfig"]

_FILL = 0
_EVICT = 1


@dataclass(frozen=True)
class PrefetchConfig:
    """Stride-prefetcher knobs for the §V-C experiments."""

    entries: int = 4096
    degree: int = 1
    #: When True and the scheme has a predictor, prefetch requests consult
    #: the prediction table and skip all probes on a predicted miss.
    redhip_filtered: bool = True


class IntegratedSimulator:
    """One-pass simulation of a (workload, scheme) pair."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ main
    def run(
        self,
        workload: Workload,
        scheme: SchemeSpec,
        prefetch: PrefetchConfig | None = None,
    ) -> SchemeResult:
        with telemetry.span(
            "integrated_run", scheme=scheme.name, workload=workload.name,
            prefetch=prefetch is not None,
        ):
            telemetry.count("integrated.runs")
            return self._run(workload, scheme, prefetch)

    def _run(
        self,
        workload: Workload,
        scheme: SchemeSpec,
        prefetch: PrefetchConfig | None = None,
    ) -> SchemeResult:
        cfg = self.config
        machine = cfg.machine
        if workload.cores != machine.cores:
            raise ConfigError("workload core count does not match machine")
        if prefetch is not None and cfg.policy is not InclusionPolicy.INCLUSIVE:
            raise ConfigError("prefetch experiments use the inclusive policy")
        if scheme.consults_table and not cfg.policy.llc_is_superset:
            raise ConfigError(
                "single-table predictor schemes need an LLC-superset policy; "
                "use run_exclusive_redhip for the exclusive hierarchy"
            )

        num_levels = machine.num_levels
        kernel = ChargingKernel.for_scheme(machine, scheme)
        ledger = EnergyLedger()

        pending: list[tuple[int, int]] = []  # (op, block) at the LLC

        ctx = None
        checker = None
        if checking.enabled(cfg):
            ctx = checking.CheckContext.for_run(
                cfg, workload.name, runner="integrated", scheme=scheme.name
            )
            checker = checking.HierarchyChecker(ctx)

            def on_fill(level: int, block: int) -> None:
                if level == num_levels:
                    pending.append((_FILL, block))
                checker.on_fill(level, block)

            def on_evict(level: int, block: int) -> None:
                if level == num_levels:
                    pending.append((_EVICT, block))
                checker.on_evict(level, block)

        else:

            def on_fill(level: int, block: int) -> None:
                if level == num_levels:
                    pending.append((_FILL, block))

            def on_evict(level: int, block: int) -> None:
                if level == num_levels:
                    pending.append((_EVICT, block))

        hierarchy_cls = CacheHierarchy
        if cfg.coherent:
            from repro.hierarchy.coherence import CoherentHierarchy

            hierarchy_cls = CoherentHierarchy
        hier = hierarchy_cls(
            machine, policy=cfg.policy, replacement=cfg.replacement,
            on_fill=on_fill, on_evict=on_evict, seed=cfg.seed,
        )
        if checker is not None:
            checker.bind(hier)
        predictor = scheme.build_predictor(machine)
        if (
            checker is not None
            and predictor is not None
            and hasattr(predictor, "table")
            and hasattr(predictor, "mirror")
            and hasattr(predictor, "engine")
            and hasattr(predictor, "_index")
        ):
            predictor = checking.CheckedPredictor(predictor, hier, ctx, pending)
        oracle = scheme.kind == "oracle"
        skipper = scheme.skips_on_predicted_miss
        levelpred = scheme.kind == "levelpred"
        ehc = scheme.kind == "ehc"
        oracle_level = scheme.kind == "oracle_level"
        dram_model = resolve_dram_model(cfg.dram)

        prefetchers = None
        if prefetch is not None:
            prefetchers = [
                StridePrefetcher(entries=prefetch.entries, degree=prefetch.degree)
                for _ in range(machine.cores)
            ]

        merged_core, merged_idx = merge_order(workload)
        blocks = [t.blocks.tolist() for t in workload.traces]
        writes = [t.write.tolist() for t in workload.traces]
        gaps = [t.gap.tolist() for t in workload.traces]
        pcs = [t.pc.tolist() for t in workload.traces]
        addrs = [t.addr.tolist() for t in workload.traces]
        cpis = workload.cpis

        core_cycles = np.zeros(machine.cores, dtype=np.float64)
        compute_cycles = np.zeros(machine.cores, dtype=np.float64)
        stall = 0.0
        l1_misses = 0
        true_misses = 0
        skips = 0
        false_positives = 0
        level_lookups = dict.fromkeys(range(1, num_levels + 1), 0)
        level_hits = dict.fromkeys(range(1, num_levels + 1), 0)

        kernel_probe = kernel.charge_probe  # bound once for the hot loop

        def charge_probe(level: int, hit: bool, rank: int = -1,
                         mode: "str | None" = None) -> float:
            """Tally one demand probe and charge it through the kernel."""
            level_lookups[level] += 1
            if hit:
                level_hits[level] += 1
            return kernel_probe(ledger, level, hit, rank, mode)

        access = hier.access
        if checker is not None:
            # Checked variant: track the access cursor and run the deferred
            # per-block inclusion checks once each access has settled.  The
            # unchecked path keeps the raw bound method — zero added work.
            inner_access = access
            after_access = checker.after_access

            def access(core: int, block: int, write: bool = False) -> int:
                ctx.current_ref += 1
                hl = inner_access(core, block, write)
                after_access(ctx.current_ref)
                return hl

        for core, idx in zip(merged_core.tolist(), merged_idx.tolist()):
            block = blocks[core][idx]
            hl = access(core, block, writes[core][idx])
            lat = kernel.charge_l1(ledger)
            level_lookups[1] += 1
            if hl == 1:
                level_hits[1] += 1
            else:
                l1_misses += 1
                if hl == 0:
                    true_misses += 1
                if levelpred:
                    plevel, conf = predictor.predict(pcs[core][idx], block)
                    lat += kernel.charge_lookup(ledger)
                    if conf and plevel == 0:
                        # Presence bit clear: guaranteed miss, skip all.
                        if hl != 0:
                            raise ReproError(
                                f"false negative: block {block:#x} "
                                f"resident at L{hl}"
                            )
                        skips += 1
                    else:
                        if conf:
                            lat += charge_probe(plevel, hit=(plevel == hl),
                                                rank=hier.last_hit_rank)
                        if not (conf and plevel == hl):
                            # Unconfident, or the single probe missed:
                            # full serial recovery walk from L2.
                            top = hl if hl >= 2 else num_levels
                            for level in range(2, top + 1):
                                lat += charge_probe(level, hit=(level == hl),
                                                    rank=hier.last_hit_rank)
                        if hl == 0:
                            false_positives += 1
                    if hl == 0:
                        if dram_model is not None:
                            lat += kernel.charge_dram(ledger, dram_model, block)
                        else:
                            lat += kernel.charge_memory(
                                ledger, cfg.memory_latency, cfg.memory_energy_nj
                            )
                    predictor.train(pcs[core][idx], block, hl)
                    stall += predictor.note_l1_miss()
                    if pending:
                        for op, eb in pending:
                            if op == _FILL:
                                predictor.on_llc_fill(eb)
                            else:
                                predictor.on_llc_evict(eb)
                    pending.clear()
                elif ehc:
                    dead = predictor.predict_dead(block)
                    lat += kernel.charge_lookup(ledger)
                    top = hl if hl >= 2 else num_levels
                    for level in range(2, top + 1):
                        lat += charge_probe(
                            level, hit=(level == hl), rank=hier.last_hit_rank,
                            mode=PROBE_PHASED
                            if (dead and level == num_levels) else None,
                        )
                    if hl == 0:
                        if dram_model is not None:
                            lat += kernel.charge_dram(ledger, dram_model, block)
                        else:
                            lat += kernel.charge_memory(
                                ledger, cfg.memory_latency, cfg.memory_energy_nj
                            )
                    if hl == num_levels:
                        predictor.observe_hit(block)
                    stall += predictor.note_l1_miss()
                    if pending:
                        for op, eb in pending:
                            if op == _FILL:
                                predictor.on_llc_fill(eb)
                            else:
                                predictor.on_llc_evict(eb)
                    pending.clear()
                elif oracle_level:
                    if hl == 0:
                        skips += 1
                        if dram_model is not None:
                            lat += kernel.charge_dram(ledger, dram_model, block)
                        else:
                            lat += kernel.charge_memory(
                                ledger, cfg.memory_latency, cfg.memory_energy_nj
                            )
                    else:
                        lat += charge_probe(hl, hit=True,
                                            rank=hier.last_hit_rank)
                else:
                    if predictor is not None:
                        predicted = predictor.predict_present(block)
                        if predictor.last_consulted:
                            lat += kernel.charge_lookup(ledger)
                        stall += predictor.note_l1_miss()
                    elif oracle:
                        predicted = hl != 0
                    else:
                        predicted = True
                    if not predicted and skipper:
                        if hl != 0:
                            raise ReproError(
                                f"false negative: block {block:#x} resident at L{hl}"
                            )
                        skips += 1
                    else:
                        top = hl if hl >= 2 else num_levels
                        for level in range(2, top + 1):
                            lat += charge_probe(level, hit=(level == hl),
                                                rank=hier.last_hit_rank)
                        if skipper and hl == 0:
                            false_positives += 1
                    if hl == 0:
                        if dram_model is not None:
                            lat += kernel.charge_dram(ledger, dram_model, block)
                        else:
                            lat += kernel.charge_memory(
                                ledger, cfg.memory_latency, cfg.memory_energy_nj
                            )
                    # Apply this access's LLC events after the lookup raced them.
                    if predictor is not None and pending:
                        for op, eb in pending:
                            if op == _FILL:
                                predictor.on_llc_fill(eb)
                            else:
                                predictor.on_llc_evict(eb)
                    pending.clear()

            pending.clear()

            if cfg.mlp != 1.0:
                lat = kernel.mlp_adjust(lat, cfg.mlp)

            if prefetchers is not None:
                # The RPT observes every reference (the original
                # stride-directed design trains per load execution); with
                # the model's zero-latency memory, issuing the next block
                # as the stride approaches its boundary is timely.
                pf = prefetchers[core]
                pf.note_demand(block)
                for target in pf.train(pcs[core][idx], addrs[core][idx]):
                    self._issue_prefetch(
                        hier, predictor, kernel, ledger, pending, core,
                        target, pf,
                    )

            compute = gaps[core][idx] * cpis[core]
            compute_cycles[core] += compute
            core_cycles[core] += compute + lat

        timing = TimingResult(
            core_cycles=core_cycles,
            compute_cycles=compute_cycles,
            memory_cycles=core_cycles - compute_cycles,
            stall_cycles=stall,
        )
        predictor_stats = predictor.stats() if predictor is not None else {}
        if predictor is not None:
            kernel.charge_predictor_maintenance(
                ledger, getattr(predictor, "table_updates", 0),
                predictor.maintenance_energy_nj(),
            )
        static_nj = kernel.static_energy_nj(
            timing.exec_cycles, include_pt=scheme.consults_table
        )
        hit_rates = {
            lvl: (level_hits[lvl] / level_lookups[lvl] if level_lookups[lvl] else 0.0)
            for lvl in level_lookups
        }
        extra = {}
        if prefetchers is not None:
            extra["prefetch"] = {
                "issued": sum(p.stats.issued for p in prefetchers),
                "useful": sum(p.stats.useful for p in prefetchers),
                "dropped_duplicate": sum(p.stats.dropped_duplicate for p in prefetchers),
            }
        result = SchemeResult(
            scheme=scheme.name,
            workload=workload.name,
            machine=machine.name,
            timing=timing,
            ledger=ledger,
            static_nj=static_nj,
            hit_rates=hit_rates,
            level_lookups=level_lookups,
            level_hits=level_hits,
            l1_misses=l1_misses,
            skips=skips,
            false_positives=false_positives,
            true_misses=true_misses,
            recal_stall_cycles=stall,
            predictor_stats=predictor_stats,
            extra=extra,
        )
        if ctx is not None:
            checker.final(ctx.current_ref)
            if ehc:
                checking.check_ehc_counters(predictor, ctx)
            checking.check_result(result, ctx)
        return result

    def _issue_prefetch(self, hier, predictor, kernel, ledger, pending,
                        core, target, prefetcher) -> None:
        """One prefetch request: optional ReDHiP filter, probes, fill."""
        probe_allowed = True
        if predictor is not None:
            kernel.charge_lookup(ledger)  # filter consult; no demand latency
            if not predictor.predict_present(target):
                probe_allowed = False  # straight to memory, no probes
        found = hier.prefetch_fill(core, target)
        if found == 1:
            return  # already in L1; the request dies at the L1 tag check
        if not probe_allowed and found != 0:
            raise ReproError("false negative on a prefetch probe")
        if probe_allowed:
            kernel.charge_prefetch_probes(ledger, found)
        prefetcher.mark_issued(target)
        # The fill's LLC events must reach the predictor (bits set for
        # prefetched blocks), after the filter consulted pre-fill state.
        if predictor is not None and pending:
            for op, eb in pending:
                if op == _FILL:
                    predictor.on_llc_fill(eb)
                else:
                    predictor.on_llc_evict(eb)
        pending.clear()

    # -------------------------------------------------- exclusive hierarchy
    def run_exclusive_redhip(
        self, workload: Workload, recal_period: int | None
    ) -> SchemeResult:
        """ReDHiP on the fully exclusive hierarchy (§III-C, Figure 13)."""
        with telemetry.span("exclusive_redhip", workload=workload.name):
            telemetry.count("integrated.runs")
            return self._run_exclusive_redhip(workload, recal_period)

    def _run_exclusive_redhip(
        self, workload: Workload, recal_period: int | None
    ) -> SchemeResult:
        cfg = self.config
        machine = cfg.machine
        if cfg.policy is not InclusionPolicy.EXCLUSIVE:
            raise ConfigError("run_exclusive_redhip requires the exclusive policy")
        num_levels = machine.num_levels
        # Exclusive ReDHiP probes every level in parallel mode; the lookup
        # cost defaults to the machine's prediction-table parameters.
        kernel = ChargingKernel(machine)
        ledger = EnergyLedger()
        stack = ExclusiveReDHiP(machine, recal_period=recal_period)

        pending: list[tuple[int, int, int]] = []  # (op, level, block)

        def on_fill(level: int, block: int) -> None:
            pending.append((_FILL, level, block))

        def on_evict(level: int, block: int) -> None:
            pending.append((_EVICT, level, block))

        hier = CacheHierarchy(
            machine, policy=cfg.policy, replacement=cfg.replacement,
            on_fill=on_fill, on_evict=on_evict, seed=cfg.seed,
        )
        n_tables = len(stack.levels)

        merged_core, merged_idx = merge_order(workload)
        blocks = [t.blocks.tolist() for t in workload.traces]
        writes = [t.write.tolist() for t in workload.traces]
        gaps = [t.gap.tolist() for t in workload.traces]
        cpis = workload.cpis

        core_cycles = np.zeros(machine.cores, dtype=np.float64)
        compute_cycles = np.zeros(machine.cores, dtype=np.float64)
        stall = 0.0
        l1_misses = true_misses = skips = false_positives = 0
        level_lookups = dict.fromkeys(range(1, num_levels + 1), 0)
        level_hits = dict.fromkeys(range(1, num_levels + 1), 0)

        access = hier.access
        for core, idx in zip(merged_core.tolist(), merged_idx.tolist()):
            block = blocks[core][idx]
            hl = access(core, block, writes[core][idx])
            lat = kernel.charge_l1(ledger)
            level_lookups[1] += 1
            if hl == 1:
                level_hits[1] += 1
            else:
                l1_misses += 1
                if hl == 0:
                    true_misses += 1
                predicted_levels = stack.predict_levels(block)
                # Per-level tables are consulted in parallel: one wire
                # delay, one access energy per table.
                lat += kernel.charge_lookup(ledger, count=n_tables)
                stall += stack.note_l1_miss()
                if hl >= 2 and hl not in predicted_levels:
                    raise ReproError(
                        f"false negative: block {block:#x} at L{hl} not predicted"
                    )
                if not predicted_levels and hl == 0:
                    skips += 1
                else:
                    for level in predicted_levels:
                        if hl >= 2 and level > hl:
                            break
                        hit = level == hl
                        level_lookups[level] += 1
                        if hit:
                            level_hits[level] += 1
                        lat += kernel.charge_probe(ledger, level, hit)
                        if hit:
                            break
                    if hl == 0 and predicted_levels:
                        false_positives += 1
                for op, level, eb in pending:
                    if op == _FILL:
                        stack.on_fill(level, eb)
                    else:
                        stack.on_evict(level, eb)
            pending.clear()
            compute = gaps[core][idx] * cpis[core]
            compute_cycles[core] += compute
            core_cycles[core] += compute + lat

        timing = TimingResult(
            core_cycles=core_cycles,
            compute_cycles=compute_cycles,
            memory_cycles=core_cycles - compute_cycles,
            stall_cycles=stall,
        )
        # Table writes: one per fill event at any level's table.
        kernel.charge_predictor_maintenance(
            ledger, stack.table_updates, stack.maintenance_energy_nj()
        )
        static_nj = kernel.static_energy_nj(timing.exec_cycles, include_pt=True)
        hit_rates = {
            lvl: (level_hits[lvl] / level_lookups[lvl] if level_lookups[lvl] else 0.0)
            for lvl in level_lookups
        }
        return SchemeResult(
            scheme="ReDHiP",
            workload=workload.name,
            machine=machine.name,
            timing=timing,
            ledger=ledger,
            static_nj=static_nj,
            hit_rates=hit_rates,
            level_lookups=level_lookups,
            level_hits=level_hits,
            l1_misses=l1_misses,
            skips=skips,
            false_positives=false_positives,
            true_misses=true_misses,
            recal_stall_cycles=stall,
            predictor_stats=stack.stats(),
        )
