"""Plain-text visualization: bar charts and sparklines for terminal output.

The paper communicates through bar charts; this module renders the same
series as aligned Unicode bars so the CLI and bench output read like the
figures they reproduce, with zero plotting dependencies.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.util.validation import ConfigError

__all__ = ["bar_chart", "grouped_bar_chart", "sparkline"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def _bar(value: float, max_value: float, width: int) -> str:
    """One left-to-right bar of ``width`` character cells."""
    if max_value <= 0:
        return ""
    frac = max(0.0, min(1.0, value / max_value))
    eighths = round(frac * width * 8)
    full, rem = divmod(eighths, 8)
    return "█" * full + (_BLOCKS[rem] if rem else "")


def bar_chart(
    series: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:+.1%}",
    baseline: float = 0.0,
) -> str:
    """Horizontal bar chart of one keyed series.

    Values are plotted as magnitudes relative to ``baseline``; negative
    deviations are marked with a leading ``-`` lane so speedup charts read
    like Figure 6 (bars below zero are visibly different).
    """
    if not series:
        raise ConfigError("cannot chart an empty series")
    if width < 4:
        raise ConfigError("chart width must be at least 4")
    deviations = {k: v - baseline for k, v in series.items()}
    max_abs = max(abs(v) for v in deviations.values()) or 1.0
    label_w = max(len(k) for k in series)
    lines = []
    for key, value in series.items():
        dev = deviations[key]
        bar = _bar(abs(dev), max_abs, width)
        sign = "-" if dev < 0 else " "
        lines.append(
            f"{key.ljust(label_w)} {sign}|{bar.ljust(width)}| "
            + value_format.format(value)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    width: int = 32,
    value_format: str = "{:+.1%}",
    baseline: float = 0.0,
) -> str:
    """Figure-style grouped bars: {benchmark: {scheme: value}}."""
    if not series:
        raise ConfigError("cannot chart an empty series")
    all_values = [v - baseline for row in series.values() for v in row.values()]
    max_abs = max((abs(v) for v in all_values), default=1.0) or 1.0
    label_w = max(
        (len(s) for row in series.values() for s in row), default=1
    )
    out = []
    for bench, row in series.items():
        out.append(f"{bench}:")
        for scheme, value in row.items():
            dev = value - baseline
            bar = _bar(abs(dev), max_abs, width)
            sign = "-" if dev < 0 else " "
            out.append(
                f"  {scheme.ljust(label_w)} {sign}|{bar.ljust(width)}| "
                + value_format.format(value)
            )
    return "\n".join(out)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend (used for the per-window phase statistics)."""
    vals = [v for v in values if v == v]  # drop NaNs
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    out = []
    for v in values:
        if v != v:
            out.append(" ")
            continue
        frac = (v - lo) / span if span else 0.5
        out.append(_SPARKS[min(7, int(frac * 8))])
    return "".join(out)
