#!/usr/bin/env python
"""Cold-vs-warm benchmark smoke: seed of the perf trajectory (PR 2).

Regenerates Figure 6 — the artifact ``benchmarks/bench_fig06_speedup.py``
times — twice through the persistent stream cache:

* **cold**: empty cache directory, every content walk runs and is saved;
* **warm**: fresh process-level state (runner memo cleared), every stream
  loads from disk — zero content walks, verified by instrumentation.

It also times the ReDHiP replay kernel head-to-head (vectorized vs
sequential, identical predictor configuration) on the largest workload's
stream, since the replay is the warm path's remaining hot loop.

Writes throughput numbers — plus per-stage span timings from the
telemetry layer (``fig6_cold_stages`` / ``fig6_warm_stages``) — to
``BENCH_pr2.json`` (repo root by default) so CI accumulates a perf
history.

The PR 6 extension adds the cold-path contract: a second artifact,
``BENCH_pr6.json``, records the cold-walk stage breakdown (workload
build / content walk / cache save vs the warm path's cache load), the
vectorized-walk counters, and the cold/warm wall-time ratio.  The run
fails if cold exceeds ``--max-cold-warm-ratio`` (default 2.0 — the
vectorized walk's budget) or regresses past the committed baseline by
more than ``--regression-slack``.  An untimed warm-up pass (disable
with ``--no-warmup``) absorbs first-process noise — imports, page
cache, allocator warm-up — that would otherwise dominate the cold
number on CI runners.  Usage::

    PYTHONPATH=src python scripts/bench_pr2.py [--refs N] [--machine M] \
        [--out BENCH_pr2.json] [--pr6-out BENCH_pr6.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path


def parse_args():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--machine", default="scaled")
    ap.add_argument("--refs", type=int, default=20_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", type=Path, default=Path("BENCH_pr2.json"))
    ap.add_argument("--pr6-out", type=Path, default=Path("BENCH_pr6.json"),
                    help="cold-path contract artifact (stage breakdown + gates)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline BENCH_pr6.json for the regression gate "
                         "(default: the committed --pr6-out file, read "
                         "before it is overwritten)")
    ap.add_argument("--max-cold-warm-ratio", type=float, default=2.0,
                    help="hard ceiling on fig6 cold/warm wall time")
    ap.add_argument("--regression-slack", type=float, default=0.35,
                    help="allowed fractional ratio growth over the baseline")
    ap.add_argument("--no-warmup", action="store_true",
                    help="skip the untimed warm-up pass")
    return ap.parse_args()


def check_cold_path(result: dict, baseline: "dict | None",
                    max_ratio: float, slack: float) -> list[str]:
    """Gate the cold-path contract; returns failure messages (empty = pass)."""
    failures = []
    ratio = result["cold_warm_ratio"]
    if ratio is None:
        return ["warm run took no measurable time"]
    if ratio > max_ratio:
        failures.append(
            f"cold/warm ratio {ratio:.2f} exceeds the {max_ratio:.2f}x budget"
        )
    if baseline:
        same_shape = (
            baseline.get("machine") == result["machine"]
            and baseline.get("refs_per_core") == result["refs_per_core"]
        )
        base_ratio = baseline.get("cold_warm_ratio")
        if same_shape and base_ratio:
            limit = base_ratio * (1.0 + slack)
            if ratio > limit:
                failures.append(
                    f"cold/warm ratio {ratio:.2f} regressed past baseline "
                    f"{base_ratio:.2f} (+{slack:.0%} slack = {limit:.2f})"
                )
        elif not same_shape:
            print(f"note: baseline config differs "
                  f"({baseline.get('machine')}/{baseline.get('refs_per_core')} "
                  f"vs {result['machine']}/{result['refs_per_core']}); "
                  "regression gate skipped", file=sys.stderr)
    return failures


def main() -> int:
    args = parse_args()
    from repro.core.redhip import ReDHiPController
    from repro.energy.params import get_machine
    from repro.experiments import clear_cache, run_experiment
    from repro.sim.config import SimConfig
    from repro.sim.content import ContentSimulator
    from repro.sim.evaluate import replay_predictor
    from repro.sim.runner import ExperimentRunner
    from repro.sim.vector_replay import replay_redhip_vectorized

    from repro import telemetry

    def stage_seconds(sess):
        """{span name: rounded total seconds} for one telemetry session."""
        return {
            name: round(agg["total_s"], 4)
            for name, agg in sorted(sess.stage_totals().items())
        }

    machine = get_machine(args.machine)
    walks = []
    real_run = ContentSimulator.run

    def counting_run(self, workload, max_accesses=None):
        walks.append(workload.name)
        return real_run(self, workload, max_accesses=max_accesses)

    ContentSimulator.run = counting_run
    try:
        if not args.no_warmup:
            # Untimed pass in a throwaway cache: pays import, page-cache
            # and allocator costs so the timed cold run measures the walk,
            # not first-process noise.
            with tempfile.TemporaryDirectory(prefix="repro-bench-warmup-") as wdir:
                run_experiment("fig6", SimConfig(
                    machine=machine, refs_per_core=args.refs,
                    seed=args.seed, stream_cache=wdir))
            clear_cache()
            walks.clear()

        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
            cfg = SimConfig(machine=machine, refs_per_core=args.refs,
                            seed=args.seed, stream_cache=cache_dir)

            t0 = time.perf_counter()
            with telemetry.session(force=True, label="bench-cold") as cold_sess:
                run_experiment("fig6", cfg)
                cold_stages = stage_seconds(cold_sess)
                vector_counters = {
                    "vector_walks": int(
                        cold_sess.registry.counter_total("content.vector_walks")),
                    "sequential_walks": int(
                        cold_sess.registry.counter_total("content.sequential_walks")),
                    "chunks": int(
                        cold_sess.registry.counter_total("content.vector_chunks")),
                    "skipped_refs": int(
                        cold_sess.registry.counter_total("content.vector_skipped")),
                }
            cold_s = time.perf_counter() - t0
            cold_walks = len(walks)

            clear_cache()  # drop the in-process runner memo; disk stays
            walks.clear()
            t0 = time.perf_counter()
            with telemetry.session(force=True, label="bench-warm") as warm_sess:
                run_experiment("fig6", cfg)
                warm_stages = stage_seconds(warm_sess)
            warm_s = time.perf_counter() - t0
            warm_walks = len(walks)
            clear_cache()

            # Replay-kernel head-to-head on one stream.
            runner = ExperimentRunner(cfg)
            stream = runner.stream("mcf")
            period = cfg.recal_period
            t0 = time.perf_counter()
            seq = ReDHiPController(machine, recal_period=period)
            replay_predictor(stream, seq)
            replay_seq_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            vec = ReDHiPController(machine, recal_period=period)
            replay_redhip_vectorized(stream, vec)
            replay_vec_s = time.perf_counter() - t0
            assert seq.stats() == vec.stats(), "replay paths diverged"
    finally:
        ContentSimulator.run = real_run

    accesses = machine.cores * args.refs
    result = {
        "benchmark": "fig6 cold-vs-warm stream cache + ReDHiP replay kernel",
        "machine": args.machine,
        "refs_per_core": args.refs,
        "seed": args.seed,
        "python": platform.python_version(),
        "fig6_cold_s": round(cold_s, 4),
        "fig6_warm_s": round(warm_s, 4),
        "fig6_cold_walks": cold_walks,
        "fig6_warm_walks": warm_walks,
        "fig6_warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "replay_sequential_s": round(replay_seq_s, 4),
        "replay_vectorized_s": round(replay_vec_s, 4),
        "replay_speedup": round(replay_seq_s / replay_vec_s, 2)
        if replay_vec_s else None,
        "replay_misses_per_s_vectorized": round(
            int((stream.hit_level != 1).sum()) / replay_vec_s
        ) if replay_vec_s else None,
        "accesses_per_workload": accesses,
        "fig6_cold_stages": cold_stages,
        "fig6_warm_stages": warm_stages,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    # PR 6 cold-path contract: stage breakdown + ratio gates.
    baseline_path = args.baseline or args.pr6_out
    baseline = None
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    pr6 = {
        "benchmark": "fig6 cold-path contract (vectorized walk)",
        "machine": args.machine,
        "refs_per_core": args.refs,
        "seed": args.seed,
        "python": platform.python_version(),
        "warmup": not args.no_warmup,
        "fig6_cold_s": round(cold_s, 4),
        "fig6_warm_s": round(warm_s, 4),
        "cold_warm_ratio": round(cold_s / warm_s, 3) if warm_s else None,
        "max_cold_warm_ratio": args.max_cold_warm_ratio,
        "cold_stages": cold_stages,
        "warm_stages": warm_stages,
        "cold_only_s": {
            # What the warm path skips: generating workloads is shared,
            # walking and saving are cold-only, loading is warm-only.
            "content_walk": cold_stages.get("content_walk", 0.0),
            "cache_save": cold_stages.get("cache_save", 0.0),
        },
        "content": vector_counters,
    }
    failures = check_cold_path(pr6, baseline,
                               args.max_cold_warm_ratio, args.regression_slack)
    pr6["pass"] = not failures
    args.pr6_out.write_text(json.dumps(pr6, indent=2) + "\n")
    print(json.dumps(pr6, indent=2))

    if warm_walks != 0:
        failures.append(f"warm regeneration ran {warm_walks} content walks "
                        "(expected 0)")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
