#!/usr/bin/env python
"""Cold-vs-warm benchmark smoke: seed of the perf trajectory (PR 2).

Regenerates Figure 6 — the artifact ``benchmarks/bench_fig06_speedup.py``
times — twice through the persistent stream cache:

* **cold**: empty cache directory, every content walk runs and is saved;
* **warm**: fresh process-level state (runner memo cleared), every stream
  loads from disk — zero content walks, verified by instrumentation.

It also times the ReDHiP replay kernel head-to-head (vectorized vs
sequential, identical predictor configuration) on the largest workload's
stream, since the replay is the warm path's remaining hot loop.

Writes throughput numbers — plus per-stage span timings from the
telemetry layer (``fig6_cold_stages`` / ``fig6_warm_stages``) — to
``BENCH_pr2.json`` (repo root by default) so CI accumulates a perf
history.  Usage::

    PYTHONPATH=src python scripts/bench_pr2.py [--refs N] [--machine M] \
        [--out BENCH_pr2.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path


def parse_args():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--machine", default="scaled")
    ap.add_argument("--refs", type=int, default=20_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", type=Path, default=Path("BENCH_pr2.json"))
    return ap.parse_args()


def main() -> int:
    args = parse_args()
    from repro.core.redhip import ReDHiPController
    from repro.energy.params import get_machine
    from repro.experiments import clear_cache, run_experiment
    from repro.sim.config import SimConfig
    from repro.sim.content import ContentSimulator
    from repro.sim.evaluate import replay_predictor
    from repro.sim.runner import ExperimentRunner
    from repro.sim.vector_replay import replay_redhip_vectorized

    from repro import telemetry

    def stage_seconds(sess):
        """{span name: rounded total seconds} for one telemetry session."""
        return {
            name: round(agg["total_s"], 4)
            for name, agg in sorted(sess.stage_totals().items())
        }

    machine = get_machine(args.machine)
    walks = []
    real_run = ContentSimulator.run

    def counting_run(self, workload, max_accesses=None):
        walks.append(workload.name)
        return real_run(self, workload, max_accesses=max_accesses)

    ContentSimulator.run = counting_run
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
            cfg = SimConfig(machine=machine, refs_per_core=args.refs,
                            seed=args.seed, stream_cache=cache_dir)

            t0 = time.perf_counter()
            with telemetry.session(force=True, label="bench-cold") as cold_sess:
                run_experiment("fig6", cfg)
                cold_stages = stage_seconds(cold_sess)
            cold_s = time.perf_counter() - t0
            cold_walks = len(walks)

            clear_cache()  # drop the in-process runner memo; disk stays
            walks.clear()
            t0 = time.perf_counter()
            with telemetry.session(force=True, label="bench-warm") as warm_sess:
                run_experiment("fig6", cfg)
                warm_stages = stage_seconds(warm_sess)
            warm_s = time.perf_counter() - t0
            warm_walks = len(walks)
            clear_cache()

            # Replay-kernel head-to-head on one stream.
            runner = ExperimentRunner(cfg)
            stream = runner.stream("mcf")
            period = cfg.recal_period
            t0 = time.perf_counter()
            seq = ReDHiPController(machine, recal_period=period)
            replay_predictor(stream, seq)
            replay_seq_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            vec = ReDHiPController(machine, recal_period=period)
            replay_redhip_vectorized(stream, vec)
            replay_vec_s = time.perf_counter() - t0
            assert seq.stats() == vec.stats(), "replay paths diverged"
    finally:
        ContentSimulator.run = real_run

    accesses = machine.cores * args.refs
    result = {
        "benchmark": "fig6 cold-vs-warm stream cache + ReDHiP replay kernel",
        "machine": args.machine,
        "refs_per_core": args.refs,
        "seed": args.seed,
        "python": platform.python_version(),
        "fig6_cold_s": round(cold_s, 4),
        "fig6_warm_s": round(warm_s, 4),
        "fig6_cold_walks": cold_walks,
        "fig6_warm_walks": warm_walks,
        "fig6_warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "replay_sequential_s": round(replay_seq_s, 4),
        "replay_vectorized_s": round(replay_vec_s, 4),
        "replay_speedup": round(replay_seq_s / replay_vec_s, 2)
        if replay_vec_s else None,
        "replay_misses_per_s_vectorized": round(
            int((stream.hit_level != 1).sum()) / replay_vec_s
        ) if replay_vec_s else None,
        "accesses_per_workload": accesses,
        "fig6_cold_stages": cold_stages,
        "fig6_warm_stages": warm_stages,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if warm_walks != 0:
        print(f"FAIL: warm regeneration ran {warm_walks} content walks "
              "(expected 0)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
