#!/usr/bin/env python
"""CI guard: no latency/energy arithmetic outside the charging kernel.

The single-source-of-truth invariant: both simulation paths
(``sim/evaluate.py``, ``sim/integrated.py``) and the vectorized replay
(``sim/vector_replay.py``) must obtain every delay and every nanojoule
through :mod:`repro.sim.charging`.  This script greps those files for the
raw-cost vocabulary (cost-table constructors, per-level energy/delay
accessors, direct ledger charges) and fails on anything not in the pinned
allowlist below.

Run from the repository root::

    python scripts/check_charging_drift.py

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Files that may not do their own charging arithmetic.
GUARDED = (
    "src/repro/sim/evaluate.py",
    "src/repro/sim/integrated.py",
    "src/repro/sim/vector_replay.py",
)

#: The raw-cost vocabulary.  Anything matching these outside the charging
#: kernel is a drift violation.
FORBIDDEN = (
    re.compile(r"\bCostTable\b"),
    re.compile(r"\bTimingModel\b"),
    re.compile(r"\bStaticEnergyModel\b"),
    re.compile(r"\bDramModel\b"),
    re.compile(r"ledger\.charge\("),
    re.compile(r"\b(tag|data|parallel|access|lookup|pt_update)_(energy|delay)\b"),
    re.compile(r"\benergy_nj\["),
    re.compile(r"\bcounts\["),
    re.compile(r"\bleakage\b"),
)

#: Pinned allowlist: (file, exact line content after strip).  The two
#: ``counts[...]`` lines are the vectorized replay's *predictor mirror*
#: occupancy counters (LLC lines per table entry) — predictor state, not
#: energy accounting.  Additions here need review: every new entry is a
#: hole in the single-source-of-truth guarantee.
ALLOWED = {
    ("src/repro/sim/vector_replay.py",
     "if len(evict_entry) and counts[evict_entry].min() < 0:"),
}


def main() -> int:
    violations: list[str] = []
    for rel in GUARDED:
        path = ROOT / rel
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if not any(pat.search(line) for pat in FORBIDDEN):
                continue
            if (rel, line.strip()) in ALLOWED:
                continue
            violations.append(f"{rel}:{lineno}: {line.strip()}")
    if violations:
        print("charging-drift violations (latency/energy arithmetic outside "
              "repro.sim.charging):")
        for v in violations:
            print(f"  {v}")
        print(f"{len(violations)} violation(s); route the charge through "
              "the ChargingKernel or pin it in scripts/check_charging_drift.py")
        return 1
    print(f"charging drift check: {len(GUARDED)} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
