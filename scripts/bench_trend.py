#!/usr/bin/env python
"""Fold every BENCH_*.json perf artifact into one trend table.

Each perf PR commits a flat ``BENCH_<tag>.json`` at the repo root; this
script (and ``repro report``, which embeds the same table) lines them up
so a new perf number always lands next to its predecessors.

Usage::

    python scripts/bench_trend.py            # text table from ./BENCH_*.json
    python scripts/bench_trend.py --json     # machine-readable rows
    python scripts/bench_trend.py --root DIR # scan another directory
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.results.trend import collect_bench, render_trend  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fold BENCH_*.json artifacts into one trend table"
    )
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="directory scanned for BENCH_*.json "
                             "(default: .)")
    parser.add_argument("--json", action="store_true",
                        help="emit the rows as JSON instead of a table")
    args = parser.parse_args(argv)

    rows = collect_bench(args.root)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_trend(rows))
    return 0 if rows else 1


if __name__ == "__main__":
    raise SystemExit(main())
