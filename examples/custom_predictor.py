#!/usr/bin/env python
"""Extending the framework: plug in your own presence predictor.

The evaluation machinery accepts any
:class:`repro.predictors.base.PresencePredictor`; this example implements
two from scratch and races them against ReDHiP:

``CoarsePredictor``
    A region-granular bitmap: one bit covers four consecutive blocks, so
    the same SRAM spans 4x the address space — higher reach, higher
    false-positive rate, and no cheap per-set recalibration (bits are
    never cleared).  A classic granularity trade-off.

``PerfectCountPredictor``
    An idealized unbounded exact tracker (a Python set with full-width
    block numbers) — what you could do with unlimited area; useful to see
    how much of the Oracle gap is aliasing vs staleness.

Both are conservative (no false negatives) — the evaluator enforces this
with a hard error, so a buggy predictor fails loudly rather than producing
flattering numbers.  (Try making ``CoarsePredictor`` clear bits on
eviction: the framework will catch the resulting false negatives
immediately.)

Run:  python examples/custom_predictor.py [workload] [refs_per_core]
"""

import sys

import numpy as np

from repro import (
    ExperimentRunner,
    SchemeSpec,
    SimConfig,
    base_scheme,
    get_machine,
    oracle_scheme,
    redhip_scheme,
)
from repro.predictors.base import PresencePredictor


class CoarsePredictor(PresencePredictor):
    """Region-granular bitmap: one bit per 4-block group, same area."""

    name = "Coarse4x"
    GRANULE_BITS = 2  # 4 blocks per bit

    def __init__(self, machine):
        bits = machine.prediction_table.size * 8
        self.mask = bits - 1
        self.bitmap = np.zeros(bits, dtype=bool)
        self.table_updates = 0

    def _index(self, block):
        return (block >> self.GRANULE_BITS) & self.mask

    def predict_present(self, block):
        return bool(self.bitmap[self._index(block)])

    def on_llc_fill(self, block):
        self.bitmap[self._index(block)] = True
        self.table_updates += 1

    def on_llc_evict(self, block):
        # Clearing here would be WRONG: siblings in the 4-block group may
        # still be resident.  Conservative bits stay set.
        pass


class PerfectCountPredictor(PresencePredictor):
    """Unbounded exact presence — no aliasing, no staleness."""

    name = "ExactDict"

    def __init__(self):
        self.resident = set()
        self.table_updates = 0

    def predict_present(self, block):
        return block in self.resident

    def on_llc_fill(self, block):
        self.resident.add(block)
        self.table_updates += 1

    def on_llc_evict(self, block):
        self.resident.discard(block)
        self.table_updates += 1


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    config = SimConfig(machine=get_machine("scaled"), refs_per_core=refs)
    runner = ExperimentRunner(config)
    period = config.recal_period

    schemes = [
        base_scheme(),
        redhip_scheme(recal_period=period),
        SchemeSpec(name="Coarse4x", kind="predictor",
                   make_predictor=lambda m: CoarsePredictor(m)),
        SchemeSpec(name="ExactDict", kind="predictor",
                   make_predictor=lambda m: PerfectCountPredictor()),
        oracle_scheme(),
    ]
    base = runner.run(workload, schemes[0])
    print(f"workload: {workload}  ({refs} refs/core)\n")
    print(f"{'predictor':12s} {'speedup':>9s} {'dyn energy':>11s} {'skip cov':>9s}")
    for scheme in schemes[1:]:
        res = runner.run(workload, scheme)
        print(f"{scheme.name:12s} {res.speedup_over(base) - 1:+9.1%} "
              f"{res.dynamic_ratio(base):11.1%} {res.skip_coverage:9.1%}")
    print("\nExactDict ~ Oracle modulo lookup overhead: the residual gap to "
          "Oracle is pure table cost; ReDHiP's gap to ExactDict is aliasing "
          "+ staleness — the trade §III accepts for 1-bit entries.")


if __name__ == "__main__":
    main()
