#!/usr/bin/env python
"""Energy study across the SPEC subset: where does the energy go, and what
does each scheme recover?

Reproduces the reasoning of the paper's introduction and §V-A on your
machine of choice:

* the base-case dynamic-energy breakdown per structure (showing the
  L3+L4 dominance that motivates the whole design),
* the normalized dynamic/total energy of CBF, Phased Cache and ReDHiP,
* the performance-energy metric that crowns the winner.

Run:  python examples/spec_energy_study.py [machine] [refs_per_core]
      (machine: "scaled" [default] or "paper")
"""

import sys

from repro import (
    ExperimentRunner,
    SimConfig,
    base_scheme,
    cbf_scheme,
    get_machine,
    phased_scheme,
    redhip_scheme,
)
from repro.sim.report import add_average, format_table
from repro.workloads import SPEC_NAMES


def main() -> None:
    machine = get_machine(sys.argv[1] if len(sys.argv) > 1 else "scaled")
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    config = SimConfig(machine=machine, refs_per_core=refs)
    runner = ExperimentRunner(config)
    schemes = [
        base_scheme(),
        cbf_scheme(),
        phased_scheme(),
        redhip_scheme(recal_period=config.recal_period),
    ]

    # --- where the base case spends dynamic energy -------------------------
    breakdown_series = {}
    for name in SPEC_NAMES:
        res = runner.run(name, schemes[0])
        b = res.ledger.breakdown()
        total = sum(b.values())
        breakdown_series[name] = {k: v / total for k, v in sorted(b.items())}
    breakdown_series = add_average(breakdown_series)
    print("Base-case dynamic-energy share by structure:")
    print(format_table(breakdown_series, ["L1", "L2", "L3", "L4"],
                       value_format="{:.1%}"))
    low = breakdown_series["average"]["L3"] + breakdown_series["average"]["L4"]
    print(f"\nL3+L4 share: {low:.1%}  (paper's motivation: ~80%)\n")

    # --- scheme comparison ---------------------------------------------------
    perf, dyn, metric = {}, {}, {}
    for name in SPEC_NAMES:
        base = runner.run(name, schemes[0])
        perf[name], dyn[name], metric[name] = {}, {}, {}
        for scheme in schemes[1:]:
            res = runner.run(name, scheme)
            perf[name][scheme.name] = res.speedup_over(base) - 1.0
            dyn[name][scheme.name] = res.dynamic_ratio(base)
            metric[name][scheme.name] = res.perf_energy_metric(base)

    cols = [s.name for s in schemes[1:]]
    print("Speedup over base:")
    print(format_table(add_average(perf), cols))
    print("\nDynamic energy (normalized to base):")
    print(format_table(add_average(dyn), cols, value_format="{:.1%}"))
    print("\nPerformance-energy metric (higher is better, base = 1.0):")
    print(format_table(add_average(metric), cols, value_format="{:.3f}"))


if __name__ == "__main__":
    main()
