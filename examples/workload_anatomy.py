#!/usr/bin/env python
"""Workload anatomy: what a trace looks like before you simulate it.

Uses the analysis toolbox to dissect one workload:

* the reuse-distance profile — analytic LRU hit rates at every capacity,
  cold-miss fraction, working-set estimate (no cache simulation needed);
* windowed phase statistics over the actual run — miss-rate and LLC-churn
  sparklines;
* the time-resolved ReDHiP skip rate, showing accuracy decaying between
  recalibration sweeps and snapping back after each one — the paper's
  Figure 12 as a time series.

Run:  python examples/workload_anatomy.py [workload] [refs_per_core]
"""

import sys

from repro import ExperimentRunner, ReDHiPController, SimConfig, get_machine
from repro.analysis import profile_trace, windowed_skip_rate, windowed_stats
from repro.energy.params import BLOCK_SIZE
from repro.viz import sparkline


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    machine = get_machine("scaled")
    config = SimConfig(machine=machine, refs_per_core=refs)
    runner = ExperimentRunner(config)
    workload = runner.workload(workload_name)

    # ---- analytic view (no simulation) ------------------------------------
    trace = workload.traces[0].head(min(refs, 40_000))
    profile = profile_trace(trace)
    print(f"workload: {workload_name}  (core 0, {trace.num_refs} refs)\n")
    print("reuse-distance profile:")
    print(f"  cold (compulsory) fraction: {profile.cold_fraction:.1%}")
    print(f"  90% working set: {profile.working_set_blocks(0.9)} blocks "
          f"({profile.working_set_blocks(0.9) * 64 // 1024} KB)")
    print("  analytic fully-associative LRU hit rate by capacity:")
    for lvl in range(1, machine.num_levels + 1):
        cap = machine.level(lvl).size // BLOCK_SIZE
        print(f"    {machine.level(lvl).name} ({machine.level(lvl).size >> 10:5d} KB): "
              f"{profile.hit_rate(cap):.1%}")

    # ---- simulated phase behaviour ----------------------------------------
    stream = runner.stream(workload_name)
    window = max(1024, stream.num_accesses // 64)
    stats = windowed_stats(stream, window=window)
    print(f"\nphase statistics ({stats.num_windows} windows of {window} accesses):")
    print(f"  L1 miss rate  {sparkline(stats.l1_miss_rate.tolist())} "
          f"(mean {stats.l1_miss_rate.mean():.1%})")
    print(f"  memory rate   {sparkline(stats.memory_rate.tolist())} "
          f"(mean {stats.memory_rate.mean():.1%})")
    print(f"  LLC fills     {sparkline(stats.llc_fill_rate.tolist())} "
          f"(per access)")

    # ---- ReDHiP accuracy over time -----------------------------------------
    predictor = ReDHiPController(machine, recal_period=config.recal_period)
    skip = windowed_skip_rate(stream, predictor, window=window)
    print(f"\nReDHiP skip rate  {sparkline(skip.tolist())}")
    print(f"  (recalibration every {config.recal_period} L1 misses; "
          f"{predictor.engine.sweeps} sweeps in this run — watch the sawtooth)")


if __name__ == "__main__":
    main()
