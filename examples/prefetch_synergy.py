#!/usr/bin/env python
"""Prefetching and ReDHiP: complementary, not competing (§V-C).

Runs the four integrated configurations of Figures 14/15 on a chosen
workload and shows why the combination wins on performance while landing
between the two on energy:

* the stride prefetcher converts *strided* misses into L1 hits,
* ReDHiP short-circuits the *irregular* misses that no stride table can
  predict,
* prefetch requests themselves are filtered through the prediction table,
  so useless probe energy is clawed back.

Run:  python examples/prefetch_synergy.py [workload] [refs_per_core]
"""

import sys

from repro import (
    ExperimentRunner,
    PrefetchConfig,
    SimConfig,
    base_scheme,
    get_machine,
    redhip_scheme,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "bwaves"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    config = SimConfig(machine=get_machine("scaled"), refs_per_core=refs)
    runner = ExperimentRunner(config)
    pf = PrefetchConfig(entries=4096, degree=1)
    red = redhip_scheme(recal_period=config.recal_period)

    print(f"workload: {workload}, {refs} refs/core (integrated simulator)\n")
    base = runner.run_integrated(workload, base_scheme())
    sp = runner.run_integrated(workload, base_scheme(), prefetch=pf)
    rh = runner.run_integrated(workload, red)
    both = runner.run_integrated(workload, red, prefetch=pf)

    print(f"{'config':12s} {'speedup':>9s} {'dyn energy':>11s} "
          f"{'L1 miss':>9s} {'pf issued':>10s} {'pf useful':>10s}")
    for label, res in (("base", base), ("SP", sp), ("ReDHiP", rh), ("SP+ReDHiP", both)):
        pstats = res.extra.get("prefetch", {})
        print(f"{label:12s} {res.speedup_over(base) - 1:+9.1%} "
              f"{res.dynamic_ratio(base):11.1%} "
              f"{res.l1_misses / res.level_lookups[1]:9.1%} "
              f"{pstats.get('issued', 0):10d} {pstats.get('useful', 0):10d}")

    add = (sp.speedup_over(base) - 1) + (rh.speedup_over(base) - 1)
    got = both.speedup_over(base) - 1
    print(f"\nsum of separate gains: {add:+.1%}; combined: {got:+.1%} "
          f"({'additive' if got > 0.7 * add else 'sub-additive'})")
    print(f"energy: SP {sp.dynamic_ratio(base):.1%} vs ReDHiP "
          f"{rh.dynamic_ratio(base):.1%}; combination "
          f"{both.dynamic_ratio(base):.1%} sits between them")


if __name__ == "__main__":
    main()
