#!/usr/bin/env python
"""Large-scale analytics workloads: Graph500 BFS and PMF matrix
factorization under ReDHiP.

These are the paper's two "state-of-the-art machine learning" workloads —
the motivating case for deep-hierarchy prediction: gigabyte working sets,
irregular access, and a large fraction of accesses that miss every cache.
The example also demonstrates building a *custom* workload from the trace
API (a pure BFS stream without the compute blend) to see the mechanism at
its best and worst.

Run:  python examples/graph_analytics.py [refs_per_core]
"""

import sys

import numpy as np

from repro import (
    ExperimentRunner,
    SimConfig,
    Trace,
    Workload,
    base_scheme,
    get_machine,
    oracle_scheme,
    redhip_scheme,
)
from repro.workloads.graph500 import bfs_reference_stream
from repro.workloads.trace import per_core_address_space


def pure_bfs_workload(machine, refs_per_core: int, seed: int = 1) -> Workload:
    """A workload of raw BFS reference streams — no hot compute blended in,
    the hardest case for the caches and the best case for LLC-miss
    prediction."""
    traces = []
    for core in range(machine.cores):
        addr, write = bfs_reference_stream(machine, seed + core, refs_per_core)
        n = len(addr)
        trace = Trace(
            name="pure-bfs",
            pc=np.full(n, 0x500000, dtype=np.uint64),
            addr=addr,
            write=write,
            gap=np.full(n, 2, dtype=np.uint32),
            cpi=3.0,
        )
        traces.append(per_core_address_space(trace, core, seed))
    return Workload(name="pure-bfs", traces=tuple(traces))


def report(runner, workload, config) -> None:
    base = runner.run(workload, base_scheme())
    red = runner.run(workload, redhip_scheme(recal_period=config.recal_period))
    orc = runner.run(workload, oracle_scheme())
    name = workload if isinstance(workload, str) else workload.name
    stream = runner.stream(workload)
    print(f"--- {name} ---")
    print("  hit rates: " + "  ".join(
        f"L{l}={r:.1%}" for l, r in stream.base_hit_rates().items()))
    print(f"  memory traffic: {base.true_misses / stream.num_accesses:.1%} of accesses")
    for res in (red, orc):
        print(f"  {res.scheme:8s}: speedup {res.speedup_over(base) - 1:+.1%}, "
              f"dynamic energy {res.dynamic_ratio(base):.1%}, "
              f"skip coverage {res.skip_coverage:.1%}")
    print()


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    machine = get_machine("scaled")
    config = SimConfig(machine=machine, refs_per_core=refs)
    runner = ExperimentRunner(config)

    print("ReDHiP on large-scale analytics workloads\n")
    report(runner, "blas", config)   # CombBLAS Graph500 model
    report(runner, "pmf", config)    # GraphLab PMF model
    report(runner, pure_bfs_workload(machine, refs), config)


if __name__ == "__main__":
    main()
