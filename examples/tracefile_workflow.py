#!/usr/bin/env python
"""Trace-file workflow: generate once, replay many times.

The paper collected Pin traces once and replayed them through the cache
simulator; this example does the same with the trace-file API — useful
when sweeping scheme parameters against a fixed workload, or for sharing a
workload between machines.

Run:  python examples/tracefile_workflow.py [workload] [refs_per_core]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    ExperimentRunner,
    SimConfig,
    base_scheme,
    get_machine,
    get_workload,
    redhip_scheme,
)
from repro.workloads import load_workload, save_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "milc"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    machine = get_machine("scaled")
    config = SimConfig(machine=machine, refs_per_core=refs)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{name}.npz"
        workload = get_workload(name, machine, refs, seed=1)
        saved = save_workload(workload, path)
        print(f"saved {workload.total_refs} references "
              f"({saved.stat().st_size / 1024:.0f} KB compressed) to {saved.name}")

        # A fresh process would start here: load and replay.
        replayed = load_workload(saved)
        runner = ExperimentRunner(config)
        runner.add_workload(replayed)
        base = runner.run(replayed.name, base_scheme())

        print(f"\nreplaying against ReDHiP table sizes "
              f"(one content walk, many evaluations):")
        print(f"{'table':>8s} {'dyn energy':>11s} {'skip cov':>9s}")
        for shift in (3, 2, 1, 0):
            size = machine.prediction_table.size >> shift
            res = runner.run(
                replayed.name,
                redhip_scheme(table_bytes=size, recal_period=config.recal_period,
                              name=f"ReDHiP-{size >> 10}KB"),
            )
            print(f"{size >> 10:6d}KB {res.dynamic_ratio(base):11.1%} "
                  f"{res.skip_coverage:9.1%}")


if __name__ == "__main__":
    main()
