#!/usr/bin/env python
"""Quickstart: run ReDHiP against the baseline on one benchmark.

This is the 60-second tour of the public API:

1. pick a machine (the paper's Table I configuration, or the scaled
   default that runs in seconds),
2. build a workload (one of the paper's eleven, by name),
3. run the base case and ReDHiP over the same content trajectory,
4. compare speedup, dynamic energy, and the predictor's skip coverage.

Run:  python examples/quickstart.py [workload] [refs_per_core]
"""

import sys

from repro import (
    ExperimentRunner,
    SimConfig,
    base_scheme,
    get_machine,
    oracle_scheme,
    redhip_scheme,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    machine = get_machine("scaled")
    config = SimConfig(machine=machine, refs_per_core=refs)
    runner = ExperimentRunner(config)

    print(f"machine: {machine.name} — {machine.cores} cores, "
          f"LLC {machine.llc.size >> 20} MB, "
          f"prediction table {machine.prediction_table.size >> 10} KB "
          f"({machine.pt_overhead_ratio:.2%} of LLC, p-k={machine.p_minus_k})")
    print(f"workload: {workload}, {refs} refs/core\n")

    base = runner.run(workload, base_scheme())
    redhip = runner.run(workload, redhip_scheme(recal_period=config.recal_period))
    oracle = runner.run(workload, oracle_scheme())

    stream = runner.stream(workload)
    rates = stream.base_hit_rates()
    print("base-case hit rates: "
          + "  ".join(f"L{l}={r:.1%}" for l, r in rates.items()))
    print(f"accesses served by memory: {base.true_misses / stream.num_accesses:.1%}\n")

    print(f"{'scheme':10s} {'speedup':>9s} {'dyn energy':>11s} {'total energy':>13s} {'skip cov':>9s}")
    for res in (base, redhip, oracle):
        print(f"{res.scheme:10s} {res.speedup_over(base) - 1:+9.1%} "
              f"{res.dynamic_ratio(base):11.1%} {res.total_ratio(base):13.1%} "
              f"{res.skip_coverage:9.1%}")

    pt_share = redhip.ledger.component_nj("PT") / redhip.dynamic_nj
    print(f"\nReDHiP prediction+recalibration overhead: {pt_share:.2%} of its "
          f"dynamic energy ({redhip.predictor_stats['recal_sweeps']:.0f} sweeps)")


if __name__ == "__main__":
    main()
